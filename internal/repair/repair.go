// Package repair implements self-healing controllers for the fault-injected
// simulator (simulate.FaultPlan): a Controller subscribes to node up/down
// transitions as a simulate.FaultHook and repairs the running deployment at
// the simulated time they occur.
//
// Two recovery mechanisms compose, mirroring the paper's own algorithms:
//
//   - Rescheduling (Section IV-B): when a VNF still has live instances, the
//     requests of its failed instances are rebalanced across the survivors
//     by re-running the request scheduler (RCKK by default) over the
//     surviving instance set — the same load-balancing objective as the
//     original schedule, restricted to what is still up.
//
//   - Re-placement (Section IV-A): when a VNF loses every instance — the
//     common case here, since the paper's placement model hosts all M_f
//     instances of a VNF on one node — replacement instances are placed
//     onto surviving nodes by BFDSU (Algorithm 1) over their residual
//     capacities, one replica at a time in the spirit of internal/dynamic's
//     replicas-as-new-VNFs scale-out. Each replacement pays the paper's
//     cited setup cost (dynamic.SetupCostVM ≈ 5 s for a middlebox VM,
//     dynamic.SetupCostClickOS ≈ 30 ms) before it may serve.
//
// On node recovery the controller rebalances affected VNFs again so the
// returned capacity is re-integrated. All decisions are deterministic given
// Config.Seed: affected VNFs are processed in sorted order and the placement
// draws derive from a per-decision seed, so equal seeds replay equal repairs.
package repair

import (
	"errors"
	"fmt"
	"slices"

	"nfvchain/internal/dynamic"
	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
)

// Mode selects how much of the repair machinery is active.
type Mode int

// Supported repair modes.
const (
	// ModeNone disables repair: failures run their course and the run
	// measures unmitigated availability (the experiment baseline).
	ModeNone Mode = iota
	// ModeReschedule rebalances requests across a VNF's surviving instances
	// but never adds capacity. With the paper's one-node-per-VNF placement
	// a node failure leaves no survivors, so this mode only helps once
	// earlier replacements have spread a VNF across nodes.
	ModeReschedule
	// ModeRescheduleReplace additionally re-places lost capacity: a VNF
	// with no surviving instance gets replacements booted on surviving
	// nodes via BFDSU, each paying Config.SetupCost before serving.
	ModeRescheduleReplace
)

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeReschedule:
		return "reschedule"
	case ModeRescheduleReplace:
		return "replace"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a -repair flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "none":
		return ModeNone, nil
	case "reschedule":
		return ModeReschedule, nil
	case "replace", "reschedule+replace":
		return ModeRescheduleReplace, nil
	default:
		return 0, fmt.Errorf("repair: unknown mode %q (want none|reschedule|replace)", s)
	}
}

// Config parameterizes a Controller.
type Config struct {
	// Problem, Placement and Schedule describe the deployment being
	// simulated — the same values passed to simulate.Config.
	Problem   *model.Problem
	Placement *model.Placement
	Schedule  *model.Schedule

	// Mode selects the repair mechanisms; the zero value is ModeNone.
	Mode Mode

	// Partitioner rebalances requests across surviving instances; nil
	// defaults to RCKK, the paper's scheduler.
	Partitioner scheduling.Partitioner

	// SetupCost is the boot delay (seconds) a replacement instance pays
	// before serving; zero defaults to dynamic.SetupCostVM.
	SetupCost float64

	// Seed makes replacement draws deterministic.
	Seed uint64
}

// Stats counts the controller's repair activity over one run.
type Stats struct {
	// NodeFailures and NodeRecoveries count the transitions observed.
	NodeFailures   int
	NodeRecoveries int
	// Reschedules counts VNF rebalances (both after failures and after
	// recoveries).
	Reschedules int
	// Replacements counts instances booted on surviving nodes;
	// ReplacementsFailed counts replicas that fit on no surviving node.
	Replacements       int
	ReplacementsFailed int
	// SetupSecs is the total boot time paid by replacements.
	SetupSecs float64
}

// Controller is a simulate.FaultHook that repairs the deployment mid-run.
// Create one per simulation run (it accumulates per-run state); it is not
// safe for concurrent use, matching the simulator's single-goroutine loop.
type Controller struct {
	cfg  Config
	part scheduling.Partitioner

	// instances[f][k] = node hosting instance k of f, covering the base
	// instances (all on the placed node) plus repair-time replacements.
	instances map[model.VNFID]map[int]model.NodeID
	// usage / usageExtras track committed demand per node so replacement
	// placement sees true residual capacities.
	usage       map[model.NodeID]float64
	usageExtras map[model.NodeID][]float64
	// reqsOf[f] lists the scheduled requests using f, in problem order, for
	// deterministic rebalancing.
	reqsOf map[model.VNFID][]model.Request

	stats Stats
	seq   uint64 // per-decision counter feeding replacement seeds

	// Rebalance/replacement scratch, reused across node transitions so the
	// repair hot path stops rebuilding slices per outage event. reuse is
	// non-nil when the partitioner supports scratch-backed calls (RCKK does).
	reuse      scheduling.ReusePartitioner
	partScr    scheduling.PartitionScratch
	items      []scheduling.Item
	affected   []model.VNFID
	surv       []int
	subProblem model.Problem
	subVNFs    [1]model.VNF
	extrasBuf  []float64
}

// New validates cfg and builds a controller primed with the initial
// placement's instance map and node usage.
func New(cfg Config) (*Controller, error) {
	if cfg.Problem == nil || cfg.Placement == nil || cfg.Schedule == nil {
		return nil, errors.New("repair: Problem, Placement and Schedule are required")
	}
	if cfg.SetupCost < 0 {
		return nil, fmt.Errorf("repair: negative setup cost %v", cfg.SetupCost)
	}
	if cfg.SetupCost == 0 {
		cfg.SetupCost = dynamic.SetupCostVM
	}
	if err := cfg.Placement.Validate(cfg.Problem); err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	if err := cfg.Schedule.ValidatePartial(cfg.Problem); err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	c := &Controller{
		cfg:         cfg,
		part:        cfg.Partitioner,
		instances:   make(map[model.VNFID]map[int]model.NodeID),
		usage:       make(map[model.NodeID]float64),
		usageExtras: make(map[model.NodeID][]float64),
		reqsOf:      make(map[model.VNFID][]model.Request),
	}
	if c.part == nil {
		c.part = scheduling.RCKK{}
	}
	c.reuse, _ = c.part.(scheduling.ReusePartitioner)
	c.prime()
	return c, nil
}

// prime loads the initial placement into the instance map, node usage and
// per-VNF request lists. Called on construction and again from Reset.
func (c *Controller) prime() {
	for _, f := range c.cfg.Problem.VNFs {
		node, ok := c.cfg.Placement.Node(f.ID)
		if !ok {
			continue
		}
		hosts := c.instances[f.ID]
		if hosts == nil {
			hosts = make(map[int]model.NodeID, f.Instances)
		}
		for k := 0; k < f.Instances; k++ {
			hosts[k] = node
		}
		c.instances[f.ID] = hosts
		c.usage[node] += f.TotalDemand()
		for d, e := range f.TotalExtras() {
			c.extrasOf(node)[d] += e
		}
	}
	for _, r := range c.cfg.Problem.Requests {
		if len(c.cfg.Schedule.InstanceOf[r.ID]) == 0 {
			continue // rejected by admission control: generates no traffic
		}
		for _, f := range r.Chain {
			c.reqsOf[f] = append(c.reqsOf[f], r)
		}
	}
}

// Reset re-primes the controller to its initial-placement state with a new
// replacement-draw seed, retaining every map and scratch buffer, so sweeps
// and benchmarks reuse one controller across simulation runs instead of
// rebuilding it per run. Equivalent to New with the same Config and Seed.
func (c *Controller) Reset(seed uint64) {
	c.cfg.Seed = seed
	c.stats = Stats{}
	c.seq = 0
	for _, hosts := range c.instances {
		clear(hosts)
	}
	clear(c.usage)
	for _, e := range c.usageExtras {
		clear(e)
	}
	for f := range c.reqsOf {
		c.reqsOf[f] = c.reqsOf[f][:0]
	}
	c.prime()
}

// extrasOf returns node's extras-usage vector, allocating it on first use.
func (c *Controller) extrasOf(n model.NodeID) []float64 {
	e, ok := c.usageExtras[n]
	if !ok && c.cfg.Problem.ExtraResources() > 0 {
		e = make([]float64, c.cfg.Problem.ExtraResources())
		c.usageExtras[n] = e
	}
	return e
}

// Stats returns the controller's accumulated repair activity.
func (c *Controller) Stats() Stats { return c.stats }

// SetupCost returns the effective boot cost replacements pay (after the
// zero-value default is applied by New).
func (c *Controller) SetupCost() float64 { return c.cfg.SetupCost }

// NodeDown implements simulate.FaultHook: rebalance each affected VNF over
// its surviving instances, first booting replacements when none survive.
func (c *Controller) NodeDown(now float64, node model.NodeID, ctrl *simulate.RepairControl) {
	c.stats.NodeFailures++
	if c.cfg.Mode == ModeNone {
		return
	}
	for _, f := range c.affectedVNFs(node) {
		survivors := c.survivors(f, ctrl)
		if len(survivors) == 0 && c.cfg.Mode == ModeRescheduleReplace {
			c.replace(f, len(c.instances[f]), now, ctrl)
			survivors = c.survivors(f, ctrl)
		}
		if len(survivors) > 0 {
			c.rebalance(f, survivors, ctrl)
		}
	}
}

// NodeUp implements simulate.FaultHook: rebalance each VNF hosted on the
// recovered node so its returned capacity is used again.
func (c *Controller) NodeUp(now float64, node model.NodeID, ctrl *simulate.RepairControl) {
	c.stats.NodeRecoveries++
	if c.cfg.Mode == ModeNone {
		return
	}
	for _, f := range c.affectedVNFs(node) {
		if survivors := c.survivors(f, ctrl); len(survivors) > 0 {
			c.rebalance(f, survivors, ctrl)
		}
	}
}

// affectedVNFs returns the VNFs with at least one instance on node, sorted
// for deterministic processing order. The returned slice is scratch, valid
// until the next call.
func (c *Controller) affectedVNFs(node model.NodeID) []model.VNFID {
	out := c.affected[:0]
	for f, hosts := range c.instances {
		for _, n := range hosts {
			if n == node {
				out = append(out, f)
				break
			}
		}
	}
	slices.Sort(out)
	c.affected = out
	return out
}

// survivors returns the instance indices of f hosted on up nodes, ascending.
// The returned slice is scratch, valid until the next call.
func (c *Controller) survivors(f model.VNFID, ctrl *simulate.RepairControl) []int {
	return c.Survivors(f, ctrl.NodeIsUp)
}

// Survivors returns the instance indices of f hosted on nodes the predicate
// accepts, ascending. The returned slice is scratch, valid until the next
// Survivors call — pool-manager controllers (internal/control) use it with
// richer predicates than node-is-up (e.g. excluding preemption-noticed
// nodes). The scratch is shared with the internal repair paths.
func (c *Controller) Survivors(f model.VNFID, keep func(model.NodeID) bool) []int {
	out := c.surv[:0]
	for k, n := range c.instances[f] {
		if keep(n) {
			out = append(out, k)
		}
	}
	slices.Sort(out)
	c.surv = out
	return out
}

// InstanceHost is one (instance index, hosting node) entry of a VNF's
// inventory.
type InstanceHost struct {
	Instance int
	Node     model.NodeID
}

// InstancesOf appends f's current inventory — base instances plus every
// repair- or control-time addition not yet forgotten — to buf, sorted by
// instance index, and returns it.
func (c *Controller) InstancesOf(f model.VNFID, buf []InstanceHost) []InstanceHost {
	start := len(buf)
	for k, n := range c.instances[f] {
		buf = append(buf, InstanceHost{Instance: k, Node: n})
	}
	slices.SortFunc(buf[start:], func(a, b InstanceHost) int { return a.Instance - b.Instance })
	return buf
}

// OfferedLoad returns the aggregate effective arrival rate of the scheduled
// requests that traverse f — the demand the VNF's instance pool must cover.
func (c *Controller) OfferedLoad(f model.VNFID) float64 {
	var load float64
	for _, r := range c.reqsOf[f] {
		load += r.EffectiveRate()
	}
	return load
}

// PickNode selects a host for one additional replica of f: BFDSU over the
// residual capacities of the nodes the predicate accepts, exactly the draw
// the replace path uses (each call advances the controller's decision
// counter, keeping picks deterministic for a given seed and call sequence).
// ok is false when no accepted node fits the replica.
func (c *Controller) PickNode(f model.VNFID, keep func(model.NodeID) bool) (model.NodeID, bool) {
	vnf, found := c.cfg.Problem.VNF(f)
	if !found {
		return "", false
	}
	c.seq++
	return c.placeReplica(vnf, keep)
}

// RecordInstance registers instance k of f as hosted on node in the
// controller's inventory, committing its demand against the node — the
// bookkeeping side of a simulate AddInstance performed by an external
// controller.
func (c *Controller) RecordInstance(f model.VNFID, k int, node model.NodeID) {
	vnf, ok := c.cfg.Problem.VNF(f)
	if !ok {
		return
	}
	hosts := c.instances[f]
	if hosts == nil {
		hosts = make(map[int]model.NodeID)
		c.instances[f] = hosts
	}
	if _, dup := hosts[k]; dup {
		return
	}
	hosts[k] = node
	c.usage[node] += vnf.Demand
	for d, e := range vnf.Extras {
		c.extrasOf(node)[d] += e
	}
}

// ForgetInstance removes instance k of f from the inventory, releasing its
// demand — the bookkeeping side of a scale-down retirement.
func (c *Controller) ForgetInstance(f model.VNFID, k int) {
	hosts := c.instances[f]
	node, ok := hosts[k]
	if !ok {
		return
	}
	delete(hosts, k)
	vnf, found := c.cfg.Problem.VNF(f)
	if !found {
		return
	}
	c.usage[node] -= vnf.Demand
	for d, e := range vnf.Extras {
		c.extrasOf(node)[d] -= e
	}
}

// MoveInstance rehosts instance k of f onto node in the inventory — the
// bookkeeping side of a simulate MigrateInstance.
func (c *Controller) MoveInstance(f model.VNFID, k int, node model.NodeID) {
	c.ForgetInstance(f, k)
	c.RecordInstance(f, k, node)
}

// Rebalance re-partitions f's scheduled requests across the given instance
// indices of f (all of which must be live in the simulation) and reroutes
// them — the exported form of the post-transition rebalancing the hook paths
// run, for external controllers reshaping the pool mid-run. No-op on an
// empty instance set.
func (c *Controller) Rebalance(f model.VNFID, instances []int, ctrl *simulate.RepairControl) {
	if len(instances) == 0 {
		return
	}
	c.rebalance(f, instances, ctrl)
}

// replace boots count replacement instances of f on surviving nodes, one
// BFDSU placement per replica over the nodes' residual capacities (the
// replicas-as-new-VNFs scale-out of internal/dynamic). Replicas that fit
// nowhere are counted and skipped — partial recovery beats none.
func (c *Controller) replace(f model.VNFID, count int, now float64, ctrl *simulate.RepairControl) {
	vnf, ok := c.cfg.Problem.VNF(f)
	if !ok {
		return
	}
	for i := 0; i < count; i++ {
		c.seq++
		node, ok := c.placeReplica(vnf, ctrl.NodeIsUp)
		if !ok {
			c.stats.ReplacementsFailed++
			continue
		}
		k, err := ctrl.AddInstance(f, node, now+c.cfg.SetupCost)
		if err != nil {
			c.stats.ReplacementsFailed++
			continue
		}
		c.instances[f][k] = node
		c.usage[node] += vnf.Demand
		for d, e := range vnf.Extras {
			c.extrasOf(node)[d] += e
		}
		c.stats.Replacements++
		c.stats.SetupSecs += c.cfg.SetupCost
	}
}

// placeReplica runs BFDSU over the residual capacities of the nodes the
// predicate accepts for a single-instance replica of vnf and returns the
// chosen host. The candidate sub-problem is rebuilt into retained scratch
// (subProblem, extrasBuf), so repeated replacements only pay for the
// placement itself.
func (c *Controller) placeReplica(vnf model.VNF, keep func(model.NodeID) bool) (model.NodeID, bool) {
	dims := c.cfg.Problem.ExtraResources()
	sub := &c.subProblem
	sub.Nodes = sub.Nodes[:0]
	sub.VNFs = sub.VNFs[:0]
	if need := len(c.cfg.Problem.Nodes) * dims; cap(c.extrasBuf) < need {
		c.extrasBuf = make([]float64, 0, need)
	}
	c.extrasBuf = c.extrasBuf[:0]
	for _, n := range c.cfg.Problem.Nodes {
		if !keep(n.ID) {
			continue
		}
		residual := n.Capacity - c.usage[n.ID]
		if residual < vnf.Demand {
			continue
		}
		start := len(c.extrasBuf)
		used := c.usageExtras[n.ID]
		fits := true
		for d := 0; d < dims; d++ {
			e := n.Extras[d]
			if used != nil {
				e -= used[d]
			}
			if d < len(vnf.Extras) && e < vnf.Extras[d] {
				fits = false
			}
			c.extrasBuf = append(c.extrasBuf, e)
		}
		if !fits {
			c.extrasBuf = c.extrasBuf[:start]
			continue
		}
		extras := c.extrasBuf[start:len(c.extrasBuf):len(c.extrasBuf)]
		sub.Nodes = append(sub.Nodes, model.Node{ID: n.ID, Capacity: residual, Extras: extras})
	}
	if len(sub.Nodes) == 0 {
		return "", false
	}
	replica := vnf
	replica.ID = model.VNFID(fmt.Sprintf("%s#re%d", vnf.ID, c.seq))
	replica.Instances = 1
	c.subVNFs[0] = replica
	sub.VNFs = c.subVNFs[:1]
	alg := &placement.BFDSU{Seed: c.cfg.Seed ^ c.seq*0x9e3779b97f4a7c15}
	res, err := alg.Place(sub)
	if err != nil {
		return "", false
	}
	node, ok := res.Placement.Node(replica.ID)
	return node, ok
}

// rebalance re-partitions f's scheduled requests across the surviving
// instance set with the configured scheduler and reroutes them.
func (c *Controller) rebalance(f model.VNFID, survivors []int, ctrl *simulate.RepairControl) {
	reqs := c.reqsOf[f]
	if len(reqs) == 0 {
		return
	}
	c.items = c.items[:0]
	for _, r := range reqs {
		c.items = append(c.items, scheduling.Item{ID: r.ID, Weight: r.EffectiveRate()})
	}
	var assign []int
	var err error
	if c.reuse != nil {
		assign, err = c.reuse.PartitionReuse(c.items, len(survivors), &c.partScr)
	} else {
		assign, err = c.part.Partition(c.items, len(survivors))
	}
	if err != nil {
		return
	}
	for i, r := range reqs {
		// Reassign only fails on stale references, which the instance map
		// precludes; a failed reroute simply leaves the old route in place.
		_ = ctrl.Reassign(r.ID, f, survivors[assign[i]])
	}
	c.stats.Reschedules++
}
