package repair

import (
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
)

// fixture is a three-node deployment of two VNFs with shared requests, sized
// so any single node can absorb the others' replacements.
func fixture(t *testing.T) (*model.Problem, *model.Schedule, *model.Placement) {
	t.Helper()
	prob := &model.Problem{
		Nodes: []model.Node{
			{ID: "a", Capacity: 10},
			{ID: "b", Capacity: 10},
			{ID: "c", Capacity: 10},
		},
		VNFs: []model.VNF{
			{ID: "fw", Instances: 2, Demand: 1, ServiceRate: 120},
			{ID: "nat", Instances: 2, Demand: 1, ServiceRate: 120},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"fw", "nat"}, Rate: 30, DeliveryProb: 1},
			{ID: "r2", Chain: []model.VNFID{"fw", "nat"}, Rate: 25, DeliveryProb: 1},
			{ID: "r3", Chain: []model.VNFID{"fw"}, Rate: 20, DeliveryProb: 1},
			{ID: "r4", Chain: []model.VNFID{"nat"}, Rate: 15, DeliveryProb: 1},
		},
	}
	sched, err := scheduling.ScheduleAll(prob, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	pl := model.NewPlacement()
	pl.Assign("fw", "a")
	pl.Assign("nat", "b")
	return prob, sched, pl
}

// runWithMode simulates the fixture under the given outages with a fresh
// controller in the given mode and returns results plus repair stats.
func runWithMode(t *testing.T, mode Mode, outages []simulate.Outage) (*simulate.Results, Stats) {
	t.Helper()
	prob, sched, pl := fixture(t)
	ctrl, err := New(Config{
		Problem:   prob,
		Placement: pl,
		Schedule:  sched,
		Mode:      mode,
		SetupCost: 0.05,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(simulate.Config{
		Problem:   prob,
		Schedule:  sched,
		Placement: pl,
		Horizon:   10,
		LinkDelay: 0.001,
		Seed:      7,
		FaultPlan: &simulate.FaultPlan{Outages: outages},
		FaultHook: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, ctrl.Stats()
}

func TestParseMode(t *testing.T) {
	for _, m := range []Mode{ModeNone, ModeReschedule, ModeRescheduleReplace} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus mode")
	}
}

func TestNewValidation(t *testing.T) {
	prob, sched, pl := fixture(t)
	cases := map[string]Config{
		"nil problem":    {Placement: pl, Schedule: sched},
		"nil placement":  {Problem: prob, Schedule: sched},
		"nil schedule":   {Problem: prob, Placement: pl},
		"negative setup": {Problem: prob, Placement: pl, Schedule: sched, SetupCost: -1},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := New(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestReplaceImprovesAvailability is the core self-healing property: under
// the same long outage and seed, reschedule+replace must strictly beat no
// repair on availability and permanent losses.
func TestReplaceImprovesAvailability(t *testing.T) {
	outages := []simulate.Outage{{Node: "a", DownAt: 2, UpAt: 9}}
	plain, plainStats := runWithMode(t, ModeNone, outages)
	repaired, stats := runWithMode(t, ModeRescheduleReplace, outages)

	if repaired.Generated != plain.Generated {
		t.Fatalf("fault/arrival streams diverged across modes: %d vs %d generated",
			repaired.Generated, plain.Generated)
	}
	if repaired.Availability <= plain.Availability {
		t.Errorf("replace availability %v not above none %v", repaired.Availability, plain.Availability)
	}
	if repaired.FailureDrops >= plain.FailureDrops {
		t.Errorf("replace failure drops %d not below none %d", repaired.FailureDrops, plain.FailureDrops)
	}
	if plainStats.NodeFailures != 1 || plainStats.Reschedules != 0 || plainStats.Replacements != 0 {
		t.Errorf("ModeNone stats show repair activity: %+v", plainStats)
	}
	if stats.NodeFailures != 1 || stats.NodeRecoveries != 1 {
		t.Errorf("transition counts wrong: %+v", stats)
	}
	if stats.Replacements != 2 { // fw had 2 instances on the failed node
		t.Errorf("replacements = %d, want 2: %+v", stats.Replacements, stats)
	}
	if stats.Reschedules == 0 || stats.ReplacementsFailed != 0 || stats.SetupSecs != 0.1 {
		t.Errorf("unexpected repair stats: %+v", stats)
	}
	// The ledger must balance in repaired runs too.
	if got := repaired.Delivered + repaired.InFlight + repaired.FailureDrops; got != repaired.Generated {
		t.Errorf("conservation violated after repair: %d != %d", got, repaired.Generated)
	}
}

// TestRescheduleOnlyWithColocatedInstances documents the structural limit of
// reschedule-only repair under the paper's placement: all of a VNF's
// instances share a node, so a node failure leaves no survivors to
// rebalance onto and availability matches the unrepaired run.
func TestRescheduleOnlyWithColocatedInstances(t *testing.T) {
	outages := []simulate.Outage{{Node: "a", DownAt: 2, UpAt: 9}}
	plain, _ := runWithMode(t, ModeNone, outages)
	resched, stats := runWithMode(t, ModeReschedule, outages)
	if resched.Availability < plain.Availability {
		t.Errorf("reschedule-only availability %v below none %v", resched.Availability, plain.Availability)
	}
	if stats.Replacements != 0 {
		t.Errorf("reschedule-only booted %d replacements", stats.Replacements)
	}
	// The recovery rebalance (NodeUp) still fires once survivors return.
	if stats.NodeRecoveries != 1 {
		t.Errorf("stats = %+v, want one recovery", stats)
	}
}

// TestSequentialFailures drives two staggered outages: the second kills a
// node that may host earlier replacements, exercising the
// rebalance-over-survivors path and replacement re-placement.
func TestSequentialFailures(t *testing.T) {
	outages := []simulate.Outage{
		{Node: "a", DownAt: 1, UpAt: 4},
		{Node: "b", DownAt: 5, UpAt: 8},
	}
	plain, _ := runWithMode(t, ModeNone, outages)
	repaired, stats := runWithMode(t, ModeRescheduleReplace, outages)
	if repaired.Availability <= plain.Availability {
		t.Errorf("replace availability %v not above none %v under sequential failures",
			repaired.Availability, plain.Availability)
	}
	if stats.NodeFailures != 2 || stats.NodeRecoveries != 2 {
		t.Errorf("transition counts wrong: %+v", stats)
	}
	if stats.Replacements == 0 {
		t.Errorf("no replacements booted: %+v", stats)
	}
	if got := repaired.Delivered + repaired.InFlight + repaired.FailureDrops; got != repaired.Generated {
		t.Errorf("conservation violated: %d != %d", got, repaired.Generated)
	}
}

// TestRepairDeterminism asserts equal seeds replay equal repairs: identical
// availability, downtime and stats across two runs.
// TestResetMatchesFresh pins the reuse contract: a controller Reset to a
// seed must behave bit-identically to a freshly constructed one — same
// simulation results, same repair stats — including when the reset run
// replays the seed of a prior, state-mutating run.
func TestResetMatchesFresh(t *testing.T) {
	outages := []simulate.Outage{
		{Node: "a", DownAt: 1, UpAt: 4},
		{Node: "b", DownAt: 5, UpAt: 8},
	}
	prob, sched, pl := fixture(t)
	ctrl, err := New(Config{
		Problem:   prob,
		Placement: pl,
		Schedule:  sched,
		Mode:      ModeRescheduleReplace,
		SetupCost: 0.05,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(c *Controller, seed uint64) (*simulate.Results, Stats) {
		res, err := simulate.Run(simulate.Config{
			Problem:   prob,
			Schedule:  sched,
			Placement: pl,
			Horizon:   10,
			LinkDelay: 0.001,
			Seed:      seed,
			FaultPlan: &simulate.FaultPlan{Outages: outages},
			FaultHook: c,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, c.Stats()
	}
	// Dirty the controller with one run on a different seed, then Reset and
	// compare against the fresh-controller baseline.
	run(ctrl, 99)
	for trial := 0; trial < 3; trial++ {
		ctrl.Reset(1)
		gotRes, gotStats := run(ctrl, 7)
		wantRes, wantStats := runWithMode(t, ModeRescheduleReplace, outages)
		if gotRes.Availability != wantRes.Availability || gotRes.Delivered != wantRes.Delivered ||
			gotRes.Dropped != wantRes.Dropped {
			t.Fatalf("trial %d: reset run diverged from fresh: %v/%d/%d vs %v/%d/%d", trial,
				gotRes.Availability, gotRes.Delivered, gotRes.Dropped,
				wantRes.Availability, wantRes.Delivered, wantRes.Dropped)
		}
		if gotStats != wantStats {
			t.Fatalf("trial %d: reset stats diverged from fresh: %+v vs %+v", trial, gotStats, wantStats)
		}
	}
}

func TestRepairDeterminism(t *testing.T) {
	outages := []simulate.Outage{
		{Node: "a", DownAt: 1, UpAt: 4},
		{Node: "b", DownAt: 5, UpAt: 8},
	}
	res1, stats1 := runWithMode(t, ModeRescheduleReplace, outages)
	res2, stats2 := runWithMode(t, ModeRescheduleReplace, outages)
	if res1.Availability != res2.Availability || res1.Delivered != res2.Delivered {
		t.Errorf("repaired runs diverged: %v/%d vs %v/%d",
			res1.Availability, res1.Delivered, res2.Availability, res2.Delivered)
	}
	if stats1 != stats2 {
		t.Errorf("repair stats diverged: %+v vs %+v", stats1, stats2)
	}
}
