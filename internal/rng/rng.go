// Package rng provides deterministic, seedable random streams and the
// distribution samplers used across nfvchain: exponential service times,
// Poisson arrivals, log-normal inter-arrivals, and the cumulative weighted
// choice at the heart of the BFDSU placement algorithm.
//
// Every consumer takes a *Stream explicitly — there are no package-level
// globals — so experiments, tests, and benchmarks replay exactly.
package rng

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Stream is a deterministic random stream. The zero value is not usable;
// construct with New or Derive.
type Stream struct {
	r   *rand.Rand
	pcg *rand.PCG
}

// New returns a stream seeded with the given seed.
func New(seed uint64) *Stream {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Stream{r: rand.New(pcg), pcg: pcg}
}

// Derive returns an independent child stream identified by a label. The same
// (parent seed, label) pair always yields the same child, which lets each
// experiment component own a private stream without cross-contamination.
func Derive(seed uint64, label string) *Stream {
	h := fnv64(label)
	pcg := rand.NewPCG(seed^h, h*0x2545f4914f6cdd1d+seed)
	return &Stream{r: rand.New(pcg), pcg: pcg}
}

// Reseed rewinds the stream in place to the exact state a fresh
// Derive(seed, label) would start in, without allocating. The label is a
// byte slice so callers sweeping many trials can rebuild labels in a reused
// buffer; Derive-constructed and Reseed-rewound streams are bit-identical.
func (s *Stream) Reseed(seed uint64, label []byte) {
	h := fnv64(label)
	s.pcg.Seed(seed^h, h*0x2545f4914f6cdd1d+seed)
}

// fnv64 hashes a label with FNV-1a.
func fnv64[T ~string | ~[]byte](s T) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Float64 returns a uniform value in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform int in [0,n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Uniform returns a uniform value in [lo,hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// UniformInt returns a uniform int in [lo,hi] inclusive. It panics when
// hi < lo.
func (s *Stream) UniformInt(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("rng: UniformInt bounds inverted: [%d,%d]", lo, hi))
	}
	return lo + s.r.IntN(hi-lo+1)
}

// Exp returns an exponentially distributed value with the given rate
// parameter (mean 1/rate). It panics if rate <= 0.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: Exp rate %v must be positive", rate))
	}
	return s.r.ExpFloat64() / rate
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and normal approximation with rejection
// for large ones.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		// Knuth: multiply uniforms until the product drops below e^-mean.
		limit := math.Exp(-mean)
		n := 0
		prod := s.r.Float64()
		for prod > limit {
			n++
			prod *= s.r.Float64()
		}
		return n
	}
	// Atkinson-style normal approximation, resampled until non-negative.
	for {
		x := s.r.NormFloat64()*math.Sqrt(mean) + mean
		if x >= 0 {
			return int(math.Round(x))
		}
	}
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return s.r.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal (mu, sigma). Used for the heavy-tailed
// flow inter-arrival mode of the workload generator.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.r.NormFloat64()*sigma + mu)
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	return s.r.Float64() < p
}

// WeightedIndex draws an index with probability proportional to weights[i],
// using the cumulative-bound scan described in the paper's BFDSU procedure:
// draw ξ uniform in [0, Σw) and return the first k with ξ < Σ_{i≤k} w_i.
// It returns -1 when the weights are empty or sum to a non-positive value.
func (s *Stream) WeightedIndex(weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("rng: negative weight %v", w))
		}
		sum += w
	}
	if len(weights) == 0 || sum <= 0 {
		return -1
	}
	xi := s.r.Float64() * sum
	var bound float64
	for i, w := range weights {
		bound += w
		if xi < bound {
			return i
		}
	}
	return len(weights) - 1 // floating-point edge: ξ landed on Σw
}

// Shuffle permutes the first n elements using the provided swap function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	s.r.Shuffle(n, swap)
}

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int {
	return s.r.Perm(n)
}
