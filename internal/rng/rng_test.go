package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestDeriveIndependence(t *testing.T) {
	x := Derive(1, "placement")
	y := Derive(1, "scheduling")
	xx := Derive(1, "placement")
	diverged := false
	for i := 0; i < 20; i++ {
		vx, vy := x.Float64(), y.Float64()
		if vx != xx.Float64() {
			t.Fatal("Derive not deterministic for equal labels")
		}
		if vx != vy {
			diverged = true
		}
	}
	if !diverged {
		t.Error("derived streams with different labels are identical")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestUniformIntRange(t *testing.T) {
	s := New(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.UniformInt(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("UniformInt(3,6) = %d out of range", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 6; v++ {
		if !seen[v] {
			t.Errorf("UniformInt never produced %d in 1000 draws", v)
		}
	}
	if got := New(1).UniformInt(5, 5); got != 5 {
		t.Errorf("UniformInt(5,5) = %d, want 5", got)
	}
}

func TestUniformIntPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UniformInt(5,4) did not panic")
		}
	}()
	New(1).UniformInt(5, 4)
}

func TestExpMean(t *testing.T) {
	s := New(11)
	const n = 200000
	rate := 4.0
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp(4) sample mean = %v, want ≈0.25", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	tests := []struct {
		name string
		mean float64
	}{
		{"small mean", 3},
		{"medium mean", 12},
		{"large mean (normal approx)", 80},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := New(5)
			const n = 100000
			var sum, sq float64
			for i := 0; i < n; i++ {
				v := float64(s.Poisson(tt.mean))
				sum += v
				sq += v * v
			}
			mean := sum / n
			variance := sq/n - mean*mean
			if math.Abs(mean-tt.mean)/tt.mean > 0.03 {
				t.Errorf("Poisson(%v) mean = %v", tt.mean, mean)
			}
			if math.Abs(variance-tt.mean)/tt.mean > 0.06 {
				t.Errorf("Poisson(%v) variance = %v, want ≈ mean", tt.mean, variance)
			}
		})
	}
	if got := New(1).Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := New(1).Poisson(-2); got != 0 {
		t.Errorf("Poisson(-2) = %d, want 0", got)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(9)
	const n = 100000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ≈10", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("Normal sd = %v, want ≈2", sd)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.LogNormal(0, 0.5)
		if v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
		sum += v
	}
	want := math.Exp(0.125) // exp(mu + sigma^2/2)
	if math.Abs(sum/n-want) > 0.02 {
		t.Errorf("LogNormal mean = %v, want ≈%v", sum/n, want)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", p)
	}
	if New(1).Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
}

func TestWeightedIndexProportions(t *testing.T) {
	s := New(21)
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedIndex(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("weight %d frequency = %v, want ≈%v", i, got, want)
		}
	}
}

func TestWeightedIndexEdgeCases(t *testing.T) {
	s := New(3)
	if got := s.WeightedIndex(nil); got != -1 {
		t.Errorf("WeightedIndex(nil) = %d, want -1", got)
	}
	if got := s.WeightedIndex([]float64{0, 0}); got != -1 {
		t.Errorf("WeightedIndex(zeros) = %d, want -1", got)
	}
	if got := s.WeightedIndex([]float64{0, 5, 0}); got != 1 {
		t.Errorf("WeightedIndex single positive = %d, want 1", got)
	}
}

func TestWeightedIndexPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WeightedIndex with negative weight did not panic")
		}
	}()
	New(1).WeightedIndex([]float64{1, -1})
}

func TestWeightedIndexAlwaysInRange(t *testing.T) {
	s := New(99)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, b := range raw {
			weights[i] = float64(b)
			sum += weights[i]
		}
		got := s.WeightedIndex(weights)
		if sum == 0 {
			return got == -1
		}
		return got >= 0 && got < len(weights) && weights[got] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(33)
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}
