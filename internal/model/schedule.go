package model

import (
	"fmt"
	"sort"
)

// Schedule maps each (request, VNF) pair to the service-instance index the
// request is assigned to (the paper's z_{r,k}^f, Eq. 5). Instance indexes are
// zero-based and must be < M_f.
type Schedule struct {
	// InstanceOf[r][f] = k means request r uses the k-th instance of VNF f.
	InstanceOf map[RequestID]map[VNFID]int `json:"instanceOf"`
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule {
	return &Schedule{InstanceOf: make(map[RequestID]map[VNFID]int)}
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	out := NewSchedule()
	for r, m := range s.InstanceOf {
		mm := make(map[VNFID]int, len(m))
		for f, k := range m {
			mm[f] = k
		}
		out.InstanceOf[r] = mm
	}
	return out
}

// Assign records that request r uses instance k of VNF f.
func (s *Schedule) Assign(r RequestID, f VNFID, k int) {
	m, ok := s.InstanceOf[r]
	if !ok {
		m = make(map[VNFID]int)
		s.InstanceOf[r] = m
	}
	m[f] = k
}

// Instance returns the instance of f serving request r, or false when
// unassigned.
func (s *Schedule) Instance(r RequestID, f VNFID) (int, bool) {
	m, ok := s.InstanceOf[r]
	if !ok {
		return 0, false
	}
	k, ok := m[f]
	return k, ok
}

// Validate checks Eq. 5 against the problem: every request is assigned to
// exactly one valid instance of every VNF in its chain, and to no VNF outside
// its chain.
func (s *Schedule) Validate(p *Problem) error {
	for _, r := range p.Requests {
		m := s.InstanceOf[r.ID]
		for _, f := range r.Chain {
			k, ok := m[f]
			if !ok {
				return fmt.Errorf("schedule: request %s unassigned for vnf %s", r.ID, f)
			}
			vnf, defined := p.VNF(f)
			if !defined {
				return fmt.Errorf("schedule: request %s assigned to undefined vnf %s", r.ID, f)
			}
			if k < 0 || k >= vnf.Instances {
				return fmt.Errorf("schedule: request %s vnf %s instance %d outside [0,%d)", r.ID, f, k, vnf.Instances)
			}
		}
		for f := range m {
			if !r.Uses(f) {
				return fmt.Errorf("schedule: request %s assigned to vnf %s outside its chain", r.ID, f)
			}
		}
	}
	for r := range s.InstanceOf {
		if _, ok := p.Request(r); !ok {
			return fmt.Errorf("schedule: unknown request %s", r)
		}
	}
	return nil
}

// ValidatePartial is Validate for post-admission schedules: a request may be
// entirely absent (it was rejected), but a present request must be assigned
// for exactly its whole chain, on valid instances.
func (s *Schedule) ValidatePartial(p *Problem) error {
	for _, r := range p.Requests {
		m := s.InstanceOf[r.ID]
		if len(m) == 0 {
			continue // rejected by admission control
		}
		for _, f := range r.Chain {
			k, ok := m[f]
			if !ok {
				return fmt.Errorf("schedule: request %s partially assigned: missing vnf %s", r.ID, f)
			}
			vnf, defined := p.VNF(f)
			if !defined {
				return fmt.Errorf("schedule: request %s assigned to undefined vnf %s", r.ID, f)
			}
			if k < 0 || k >= vnf.Instances {
				return fmt.Errorf("schedule: request %s vnf %s instance %d outside [0,%d)", r.ID, f, k, vnf.Instances)
			}
		}
		for f := range m {
			if !r.Uses(f) {
				return fmt.Errorf("schedule: request %s assigned to vnf %s outside its chain", r.ID, f)
			}
		}
	}
	for r := range s.InstanceOf {
		if _, ok := p.Request(r); !ok {
			return fmt.Errorf("schedule: unknown request %s", r)
		}
	}
	return nil
}

// InstanceLoads returns, for VNF f, the effective total arrival rate Λ_k^f of
// each of its M_f instances (Eq. 7): Λ_k^f = Σ_r (λ_r/P_r)·z_{r,k}^f.
func (s *Schedule) InstanceLoads(p *Problem, f VNFID) []float64 {
	vnf, ok := p.VNF(f)
	if !ok {
		return nil
	}
	loads := make([]float64, vnf.Instances)
	for _, r := range p.Requests {
		if !r.Uses(f) {
			continue
		}
		if k, assigned := s.Instance(r.ID, f); assigned && k >= 0 && k < len(loads) {
			loads[k] += r.EffectiveRate()
		}
	}
	return loads
}

// RawInstanceLoads is like InstanceLoads but sums the external rates λ_r
// without the 1/P_r retransmission inflation (the denominator of Eq. 11).
func (s *Schedule) RawInstanceLoads(p *Problem, f VNFID) []float64 {
	vnf, ok := p.VNF(f)
	if !ok {
		return nil
	}
	loads := make([]float64, vnf.Instances)
	for _, r := range p.Requests {
		if !r.Uses(f) {
			continue
		}
		if k, assigned := s.Instance(r.ID, f); assigned && k >= 0 && k < len(loads) {
			loads[k] += r.Rate
		}
	}
	return loads
}

// RequestsOn returns the requests assigned to instance k of VNF f, sorted by
// id (the paper's set s_k).
func (s *Schedule) RequestsOn(f VNFID, k int) []RequestID {
	var out []RequestID
	for r, m := range s.InstanceOf {
		if kk, ok := m[f]; ok && kk == k {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
