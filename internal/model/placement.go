package model

import (
	"fmt"
	"sort"
)

// Placement maps every VNF to the computing node hosting all of its service
// instances (the paper's x_v^f with Σ_v x_v^f = 1, Eq. 2).
type Placement struct {
	NodeOf map[VNFID]NodeID `json:"nodeOf"`
}

// NewPlacement returns an empty placement.
func NewPlacement() *Placement {
	return &Placement{NodeOf: make(map[VNFID]NodeID)}
}

// Clone returns a deep copy of the placement.
func (pl *Placement) Clone() *Placement {
	out := &Placement{NodeOf: make(map[VNFID]NodeID, len(pl.NodeOf))}
	for f, v := range pl.NodeOf {
		out.NodeOf[f] = v
	}
	return out
}

// Assign places VNF f on node v, replacing any earlier assignment.
func (pl *Placement) Assign(f VNFID, v NodeID) {
	pl.NodeOf[f] = v
}

// Node returns the node hosting f, or false when f is unplaced.
func (pl *Placement) Node(f VNFID) (NodeID, bool) {
	v, ok := pl.NodeOf[f]
	return v, ok
}

// UsedNodes returns the ids of nodes hosting at least one VNF (the paper's
// y_v = 1 set), sorted for determinism.
func (pl *Placement) UsedNodes() []NodeID {
	set := make(map[NodeID]struct{})
	for _, v := range pl.NodeOf {
		set[v] = struct{}{}
	}
	out := make([]NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VNFsOn returns the ids of VNFs placed on node v, sorted for determinism.
func (pl *Placement) VNFsOn(v NodeID) []VNFID {
	var out []VNFID
	for f, w := range pl.NodeOf {
		if w == v {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Load returns the resource units consumed on each node:
// load(v) = Σ_f x_v^f · M_f · D_f. Accumulation follows the problem's VNF
// order so floating-point sums are deterministic.
func (pl *Placement) Load(p *Problem) map[NodeID]float64 {
	load := make(map[NodeID]float64)
	for _, vnf := range p.VNFs {
		if v, ok := pl.NodeOf[vnf.ID]; ok {
			load[v] += vnf.TotalDemand()
		}
	}
	return load
}

// ExtrasLoad returns the per-node consumption of each additional resource:
// extrasLoad(v)[i] = Σ_f x_v^f · M_f · Extras_f[i]. Nodes with no load are
// absent. Returns nil for CPU-only problems.
func (pl *Placement) ExtrasLoad(p *Problem) map[NodeID][]float64 {
	dims := p.ExtraResources()
	if dims == 0 {
		return nil
	}
	load := make(map[NodeID][]float64)
	for _, vnf := range p.VNFs {
		v, ok := pl.NodeOf[vnf.ID]
		if !ok {
			continue
		}
		row := load[v]
		if row == nil {
			row = make([]float64, dims)
			load[v] = row
		}
		for i, e := range vnf.TotalExtras() {
			row[i] += e
		}
	}
	return load
}

// Residual returns RST(v) = A_v − load(v) for every node in the problem,
// including unused nodes (whose residual equals their full capacity).
func (pl *Placement) Residual(p *Problem) map[NodeID]float64 {
	load := pl.Load(p)
	rst := make(map[NodeID]float64, len(p.Nodes))
	for _, n := range p.Nodes {
		rst[n.ID] = n.Capacity - load[n.ID]
	}
	return rst
}

// Validate checks the placement against the problem: every VNF placed exactly
// once on a defined node, and no node over capacity (Eq. 6). A small epsilon
// absorbs floating-point accumulation.
func (pl *Placement) Validate(p *Problem) error {
	const eps = 1e-9
	for _, f := range p.VNFs {
		if _, ok := pl.NodeOf[f.ID]; !ok {
			return fmt.Errorf("placement: vnf %s unplaced", f.ID)
		}
	}
	for f, v := range pl.NodeOf {
		if _, ok := p.VNF(f); !ok {
			return fmt.Errorf("placement: unknown vnf %s", f)
		}
		if _, ok := p.Node(v); !ok {
			return fmt.Errorf("placement: vnf %s on unknown node %s", f, v)
		}
	}
	for v, used := range pl.Load(p) {
		node, _ := p.Node(v)
		if used > node.Capacity+eps {
			return fmt.Errorf("placement: node %s over capacity: %v > %v", v, used, node.Capacity)
		}
	}
	for v, extras := range pl.ExtrasLoad(p) {
		node, _ := p.Node(v)
		for i, used := range extras {
			if used > node.Extras[i]+eps {
				return fmt.Errorf("placement: node %s over extra resource %d: %v > %v", v, i, used, node.Extras[i])
			}
		}
	}
	return nil
}

// NodesInService returns Σ_v y_v, the objective of Eq. 14.
func (pl *Placement) NodesInService() int {
	return len(pl.UsedNodes())
}

// AverageUtilization returns the paper's Objective 1 value (Eq. 13): the mean
// of load(v)/A_v over nodes in service. It returns 0 for an empty placement.
func (pl *Placement) AverageUtilization(p *Problem) float64 {
	load := pl.Load(p)
	if len(load) == 0 {
		return 0
	}
	// Sum in node order for deterministic floating-point results.
	var sum float64
	for _, node := range p.Nodes {
		used, ok := load[node.ID]
		if !ok || node.Capacity == 0 {
			continue
		}
		sum += used / node.Capacity
	}
	return sum / float64(len(load))
}

// ResourceOccupation returns Σ_{v used} A_v, the total capacity of all nodes
// in service (the Fig. 9 metric): capacity committed whether or not filled.
func (pl *Placement) ResourceOccupation(p *Problem) float64 {
	var sum float64
	for _, v := range pl.UsedNodes() {
		node, ok := p.Node(v)
		if !ok {
			continue
		}
		sum += node.Capacity
	}
	return sum
}

// Traverses reports whether request r visits node v under this placement
// (the paper's η_v^r, Eq. 4).
func (pl *Placement) Traverses(r Request, v NodeID) bool {
	for _, f := range r.Chain {
		if w, ok := pl.NodeOf[f]; ok && w == v {
			return true
		}
	}
	return false
}

// NodeSpan returns Σ_v η_v^r: the number of distinct nodes request r visits.
// The Eq. 16 link-latency term charges L per hop, i.e. (NodeSpan−1)·L.
func (pl *Placement) NodeSpan(r Request) int {
	set := make(map[NodeID]struct{}, len(r.Chain))
	for _, f := range r.Chain {
		if v, ok := pl.NodeOf[f]; ok {
			set[v] = struct{}{}
		}
	}
	return len(set)
}
