package model

import "testing"

func testSchedule() *Schedule {
	s := NewSchedule()
	s.Assign("r1", "fw", 0)
	s.Assign("r1", "nat", 0)
	s.Assign("r2", "fw", 1)
	s.Assign("r3", "ids", 2)
	s.Assign("r3", "fw", 0)
	s.Assign("r3", "nat", 0)
	return s
}

func TestScheduleAssignAndInstance(t *testing.T) {
	s := NewSchedule()
	s.Assign("r1", "fw", 1)
	if k, ok := s.Instance("r1", "fw"); !ok || k != 1 {
		t.Errorf("Instance(r1,fw) = %d, %v", k, ok)
	}
	if _, ok := s.Instance("r1", "nat"); ok {
		t.Error("Instance found unassigned vnf")
	}
	if _, ok := s.Instance("rX", "fw"); ok {
		t.Error("Instance found unknown request")
	}
	s.Assign("r1", "fw", 0) // reassignment replaces
	if k, _ := s.Instance("r1", "fw"); k != 0 {
		t.Errorf("reassignment failed: %d", k)
	}
}

func TestScheduleValidate(t *testing.T) {
	p := testProblem()
	if err := testSchedule().Validate(p); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}

	t.Run("missing assignment", func(t *testing.T) {
		s := testSchedule()
		delete(s.InstanceOf["r1"], "nat")
		checkErr(t, s.Validate(p), "unassigned")
	})
	t.Run("instance out of range", func(t *testing.T) {
		s := testSchedule()
		s.Assign("r1", "fw", 2) // fw has M_f = 2 → valid k ∈ {0,1}
		checkErr(t, s.Validate(p), "outside")
	})
	t.Run("negative instance", func(t *testing.T) {
		s := testSchedule()
		s.Assign("r1", "fw", -1)
		checkErr(t, s.Validate(p), "outside")
	})
	t.Run("vnf outside chain", func(t *testing.T) {
		s := testSchedule()
		s.Assign("r2", "nat", 0) // r2's chain is only fw
		checkErr(t, s.Validate(p), "outside its chain")
	})
	t.Run("unknown request", func(t *testing.T) {
		s := testSchedule()
		s.Assign("ghost", "fw", 0)
		checkErr(t, s.Validate(p), "unknown request")
	})
}

func TestScheduleValidatePartial(t *testing.T) {
	p := testProblem()

	t.Run("full schedule passes", func(t *testing.T) {
		if err := testSchedule().ValidatePartial(p); err != nil {
			t.Errorf("ValidatePartial: %v", err)
		}
	})
	t.Run("absent request allowed", func(t *testing.T) {
		s := testSchedule()
		delete(s.InstanceOf, "r2")
		if err := s.ValidatePartial(p); err != nil {
			t.Errorf("ValidatePartial rejected absent request: %v", err)
		}
		// But the full Validate still rejects it.
		if err := s.Validate(p); err == nil {
			t.Error("Validate accepted partial schedule")
		}
	})
	t.Run("partially assigned request rejected", func(t *testing.T) {
		s := testSchedule()
		delete(s.InstanceOf["r1"], "nat")
		checkErr(t, s.ValidatePartial(p), "partially assigned")
	})
	t.Run("out of range instance rejected", func(t *testing.T) {
		s := testSchedule()
		s.Assign("r1", "fw", 5)
		checkErr(t, s.ValidatePartial(p), "outside")
	})
	t.Run("vnf outside chain rejected", func(t *testing.T) {
		s := testSchedule()
		s.Assign("r2", "nat", 0)
		checkErr(t, s.ValidatePartial(p), "outside its chain")
	})
	t.Run("unknown request rejected", func(t *testing.T) {
		s := testSchedule()
		s.Assign("ghost", "fw", 0)
		checkErr(t, s.ValidatePartial(p), "unknown request")
	})
}

func TestScheduleInstanceLoads(t *testing.T) {
	p := testProblem()
	s := testSchedule()
	// fw instances: k=0 gets r1 (10/1) + r3 (5/0.5=10) = 20; k=1 gets r2 (20/0.98).
	loads := s.InstanceLoads(p, "fw")
	if len(loads) != 2 {
		t.Fatalf("InstanceLoads(fw) len = %d, want 2", len(loads))
	}
	if !almostEqual(loads[0], 20, 1e-9) {
		t.Errorf("loads[0] = %v, want 20", loads[0])
	}
	if !almostEqual(loads[1], 20/0.98, 1e-9) {
		t.Errorf("loads[1] = %v, want %v", loads[1], 20/0.98)
	}
	if got := s.InstanceLoads(p, "ghost"); got != nil {
		t.Errorf("InstanceLoads(ghost) = %v, want nil", got)
	}
}

func TestScheduleRawInstanceLoads(t *testing.T) {
	p := testProblem()
	s := testSchedule()
	loads := s.RawInstanceLoads(p, "fw")
	if !almostEqual(loads[0], 15, 1e-9) { // r1=10 + r3=5, no inflation
		t.Errorf("raw loads[0] = %v, want 15", loads[0])
	}
	if !almostEqual(loads[1], 20, 1e-9) {
		t.Errorf("raw loads[1] = %v, want 20", loads[1])
	}
}

func TestScheduleRequestsOn(t *testing.T) {
	s := testSchedule()
	got := s.RequestsOn("fw", 0)
	if len(got) != 2 || got[0] != "r1" || got[1] != "r3" {
		t.Errorf("RequestsOn(fw,0) = %v, want [r1 r3]", got)
	}
	if got := s.RequestsOn("fw", 5); len(got) != 0 {
		t.Errorf("RequestsOn(fw,5) = %v, want empty", got)
	}
}

func TestScheduleClone(t *testing.T) {
	s := testSchedule()
	c := s.Clone()
	c.Assign("r1", "fw", 1)
	if k, _ := s.Instance("r1", "fw"); k != 0 {
		t.Error("Clone shares maps with original")
	}
}
