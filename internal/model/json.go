package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the problem as indented JSON.
func (p *Problem) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("model: encode problem: %w", err)
	}
	return nil
}

// ReadJSON parses a problem from JSON and validates it.
func ReadJSON(r io.Reader) (*Problem, error) {
	var p Problem
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("model: decode problem: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("model: invalid problem: %w", err)
	}
	return &p, nil
}
