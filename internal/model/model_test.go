package model

import (
	"math"
	"strings"
	"testing"
)

func testProblem() *Problem {
	return &Problem{
		Nodes: []Node{
			{ID: "n1", Capacity: 100},
			{ID: "n2", Capacity: 50},
			{ID: "n3", Capacity: 200},
		},
		VNFs: []VNF{
			{ID: "fw", Name: "Firewall", Instances: 2, Demand: 10, ServiceRate: 100},
			{ID: "nat", Name: "NAT", Instances: 1, Demand: 30, ServiceRate: 150},
			{ID: "ids", Name: "IDS", Instances: 3, Demand: 5, ServiceRate: 80},
		},
		Requests: []Request{
			{ID: "r1", Chain: []VNFID{"fw", "nat"}, Rate: 10, DeliveryProb: 1},
			{ID: "r2", Chain: []VNFID{"fw"}, Rate: 20, DeliveryProb: 0.98},
			{ID: "r3", Chain: []VNFID{"ids", "fw", "nat"}, Rate: 5, DeliveryProb: 0.5},
		},
	}
}

func TestVNFTotalDemand(t *testing.T) {
	tests := []struct {
		name string
		vnf  VNF
		want float64
	}{
		{"single instance", VNF{Instances: 1, Demand: 7}, 7},
		{"multiple instances", VNF{Instances: 4, Demand: 2.5}, 10},
		{"zero demand", VNF{Instances: 3, Demand: 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.vnf.TotalDemand(); got != tt.want {
				t.Errorf("TotalDemand() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVNFValidate(t *testing.T) {
	tests := []struct {
		name    string
		vnf     VNF
		wantErr string
	}{
		{"valid", VNF{ID: "f", Instances: 1, Demand: 1, ServiceRate: 1}, ""},
		{"empty id", VNF{Instances: 1, ServiceRate: 1}, "empty id"},
		{"zero instances", VNF{ID: "f", Instances: 0, ServiceRate: 1}, "instances"},
		{"negative demand", VNF{ID: "f", Instances: 1, Demand: -1, ServiceRate: 1}, "negative demand"},
		{"zero service rate", VNF{ID: "f", Instances: 1, Demand: 1}, "service rate"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.vnf.Validate()
			checkErr(t, err, tt.wantErr)
		})
	}
}

func TestNodeValidate(t *testing.T) {
	tests := []struct {
		name    string
		node    Node
		wantErr string
	}{
		{"valid", Node{ID: "n", Capacity: 1}, ""},
		{"empty id", Node{Capacity: 1}, "empty id"},
		{"zero capacity", Node{ID: "n"}, "capacity"},
		{"negative capacity", Node{ID: "n", Capacity: -5}, "capacity"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			checkErr(t, tt.node.Validate(), tt.wantErr)
		})
	}
}

func TestRequestValidate(t *testing.T) {
	tests := []struct {
		name    string
		req     Request
		wantErr string
	}{
		{"valid", Request{ID: "r", Chain: []VNFID{"f"}, Rate: 1, DeliveryProb: 1}, ""},
		{"empty id", Request{Chain: []VNFID{"f"}, Rate: 1, DeliveryProb: 1}, "empty id"},
		{"empty chain", Request{ID: "r", Rate: 1, DeliveryProb: 1}, "empty chain"},
		{"zero rate", Request{ID: "r", Chain: []VNFID{"f"}, DeliveryProb: 1}, "rate"},
		{"p zero", Request{ID: "r", Chain: []VNFID{"f"}, Rate: 1}, "delivery probability"},
		{"p above one", Request{ID: "r", Chain: []VNFID{"f"}, Rate: 1, DeliveryProb: 1.5}, "delivery probability"},
		{"dup vnf in chain", Request{ID: "r", Chain: []VNFID{"f", "f"}, Rate: 1, DeliveryProb: 1}, "twice"},
		{"empty vnf id", Request{ID: "r", Chain: []VNFID{""}, Rate: 1, DeliveryProb: 1}, "empty vnf id"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			checkErr(t, tt.req.Validate(), tt.wantErr)
		})
	}
}

func TestRequestEffectiveRate(t *testing.T) {
	r := Request{Rate: 10, DeliveryProb: 0.5}
	if got := r.EffectiveRate(); got != 20 {
		t.Errorf("EffectiveRate() = %v, want 20", got)
	}
	r = Request{Rate: 10, DeliveryProb: 1}
	if got := r.EffectiveRate(); got != 10 {
		t.Errorf("EffectiveRate() with P=1 = %v, want 10", got)
	}
}

func TestRequestUses(t *testing.T) {
	r := Request{Chain: []VNFID{"a", "b"}}
	if !r.Uses("a") || !r.Uses("b") {
		t.Error("Uses() missed chain members")
	}
	if r.Uses("c") {
		t.Error("Uses() matched non-member")
	}
}

func TestProblemValidate(t *testing.T) {
	if err := testProblem().Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}

	t.Run("no nodes", func(t *testing.T) {
		p := testProblem()
		p.Nodes = nil
		checkErr(t, p.Validate(), "no nodes")
	})
	t.Run("no vnfs", func(t *testing.T) {
		p := testProblem()
		p.VNFs = nil
		checkErr(t, p.Validate(), "no vnfs")
	})
	t.Run("duplicate node", func(t *testing.T) {
		p := testProblem()
		p.Nodes = append(p.Nodes, Node{ID: "n1", Capacity: 1})
		checkErr(t, p.Validate(), "duplicate node")
	})
	t.Run("duplicate vnf", func(t *testing.T) {
		p := testProblem()
		p.VNFs = append(p.VNFs, VNF{ID: "fw", Instances: 1, ServiceRate: 1})
		checkErr(t, p.Validate(), "duplicate vnf")
	})
	t.Run("duplicate request", func(t *testing.T) {
		p := testProblem()
		p.Requests = append(p.Requests, Request{ID: "r1", Chain: []VNFID{"fw"}, Rate: 1, DeliveryProb: 1})
		checkErr(t, p.Validate(), "duplicate request")
	})
	t.Run("undefined vnf in chain", func(t *testing.T) {
		p := testProblem()
		p.Requests = append(p.Requests, Request{ID: "rx", Chain: []VNFID{"ghost"}, Rate: 1, DeliveryProb: 1})
		checkErr(t, p.Validate(), "undefined vnf")
	})
}

func TestProblemLookups(t *testing.T) {
	p := testProblem()
	if f, ok := p.VNF("nat"); !ok || f.Demand != 30 {
		t.Errorf("VNF(nat) = %+v, %v", f, ok)
	}
	if _, ok := p.VNF("ghost"); ok {
		t.Error("VNF(ghost) found")
	}
	if n, ok := p.Node("n2"); !ok || n.Capacity != 50 {
		t.Errorf("Node(n2) = %+v, %v", n, ok)
	}
	if _, ok := p.Node("nX"); ok {
		t.Error("Node(nX) found")
	}
	if r, ok := p.Request("r3"); !ok || len(r.Chain) != 3 {
		t.Errorf("Request(r3) = %+v, %v", r, ok)
	}
	if _, ok := p.Request("rX"); ok {
		t.Error("Request(rX) found")
	}
}

func TestProblemRequestsUsing(t *testing.T) {
	p := testProblem()
	got := p.RequestsUsing("fw")
	if len(got) != 3 {
		t.Fatalf("RequestsUsing(fw) = %v, want all 3", got)
	}
	got = p.RequestsUsing("ids")
	if len(got) != 1 || got[0] != "r3" {
		t.Errorf("RequestsUsing(ids) = %v, want [r3]", got)
	}
	if got := p.RequestsUsing("ghost"); got != nil {
		t.Errorf("RequestsUsing(ghost) = %v, want nil", got)
	}
}

func TestProblemTotals(t *testing.T) {
	p := testProblem()
	wantDemand := 2*10.0 + 1*30.0 + 3*5.0
	if got := p.TotalDemand(); got != wantDemand {
		t.Errorf("TotalDemand() = %v, want %v", got, wantDemand)
	}
	if got := p.TotalCapacity(); got != 350 {
		t.Errorf("TotalCapacity() = %v, want 350", got)
	}
}

func TestSortedVNFsByDemand(t *testing.T) {
	p := testProblem()
	got := p.SortedVNFsByDemand()
	// Total demands: fw=20, nat=30, ids=15 → nat, fw, ids.
	wantOrder := []VNFID{"nat", "fw", "ids"}
	for i, f := range got {
		if f.ID != wantOrder[i] {
			t.Fatalf("SortedVNFsByDemand()[%d] = %s, want %s", i, f.ID, wantOrder[i])
		}
	}
	// Original slice untouched.
	if p.VNFs[0].ID != "fw" {
		t.Error("SortedVNFsByDemand mutated the problem")
	}
}

func TestSortedVNFsByDemandTieBreak(t *testing.T) {
	p := &Problem{
		Nodes: []Node{{ID: "n", Capacity: 10}},
		VNFs: []VNF{
			{ID: "b", Instances: 1, Demand: 5, ServiceRate: 1},
			{ID: "a", Instances: 1, Demand: 5, ServiceRate: 1},
		},
	}
	got := p.SortedVNFsByDemand()
	if got[0].ID != "a" || got[1].ID != "b" {
		t.Errorf("tie-break not by id: %v, %v", got[0].ID, got[1].ID)
	}
}

func TestProblemClone(t *testing.T) {
	p := testProblem()
	q := p.Clone()
	q.Requests[0].Chain[0] = "mutated"
	q.Nodes[0].Capacity = 1
	if p.Requests[0].Chain[0] == "mutated" {
		t.Error("Clone shares chain slices")
	}
	if p.Nodes[0].Capacity == 1 {
		t.Error("Clone shares node slice")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := testProblem()
	var buf strings.Builder
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	q, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(q.Nodes) != len(p.Nodes) || len(q.VNFs) != len(p.VNFs) || len(q.Requests) != len(p.Requests) {
		t.Errorf("round trip lost elements: %+v", q)
	}
	if q.Requests[2].DeliveryProb != 0.5 {
		t.Errorf("round trip lost DeliveryProb: %v", q.Requests[2].DeliveryProb)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[],"vnfs":[],"requests":[]}`)); err == nil {
		t.Error("ReadJSON accepted empty problem")
	}
	if _, err := ReadJSON(strings.NewReader(`{"bogus":1}`)); err == nil {
		t.Error("ReadJSON accepted unknown fields")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("ReadJSON accepted garbage")
	}
}

func checkErr(t *testing.T, err error, want string) {
	t.Helper()
	if want == "" {
		if err != nil {
			t.Errorf("unexpected error: %v", err)
		}
		return
	}
	if err == nil {
		t.Errorf("expected error containing %q, got nil", want)
		return
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

func TestMaxChainLengthConstant(t *testing.T) {
	if MaxChainLength != 6 {
		t.Errorf("MaxChainLength = %d, want 6 (paper Sec. V-A)", MaxChainLength)
	}
}

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestJSONRoundTripWithExtras(t *testing.T) {
	p := testProblem()
	for i := range p.Nodes {
		p.Nodes[i].Extras = []float64{64, 10}
	}
	for i := range p.VNFs {
		p.VNFs[i].Extras = []float64{2, 0.5}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if q.ExtraResources() != 2 {
		t.Errorf("ExtraResources after round trip = %d", q.ExtraResources())
	}
	if q.VNFs[0].Extras[1] != 0.5 {
		t.Errorf("vnf extras lost: %v", q.VNFs[0].Extras)
	}
}

func TestProblemCloneDeepCopiesExtras(t *testing.T) {
	p := testProblem()
	p.Nodes[0].Extras = []float64{64}
	p.VNFs[0].Extras = []float64{2}
	for i := range p.Nodes[1:] {
		p.Nodes[i+1].Extras = []float64{64}
	}
	for i := range p.VNFs[1:] {
		p.VNFs[i+1].Extras = []float64{2}
	}
	q := p.Clone()
	q.Nodes[0].Extras[0] = 1
	q.VNFs[0].Extras[0] = 1
	if p.Nodes[0].Extras[0] == 1 || p.VNFs[0].Extras[0] == 1 {
		t.Error("Clone shares extras slices")
	}
}
