package model

import (
	"testing"
)

func testPlacement() *Placement {
	pl := NewPlacement()
	pl.Assign("fw", "n1")  // demand 20
	pl.Assign("nat", "n1") // demand 30
	pl.Assign("ids", "n2") // demand 15
	return pl
}

func TestPlacementAssignAndNode(t *testing.T) {
	pl := NewPlacement()
	pl.Assign("fw", "n1")
	if v, ok := pl.Node("fw"); !ok || v != "n1" {
		t.Errorf("Node(fw) = %v, %v", v, ok)
	}
	pl.Assign("fw", "n2") // reassignment replaces
	if v, _ := pl.Node("fw"); v != "n2" {
		t.Errorf("reassignment failed: %v", v)
	}
	if _, ok := pl.Node("ghost"); ok {
		t.Error("Node(ghost) found")
	}
}

func TestPlacementUsedNodes(t *testing.T) {
	pl := testPlacement()
	used := pl.UsedNodes()
	if len(used) != 2 || used[0] != "n1" || used[1] != "n2" {
		t.Errorf("UsedNodes() = %v, want [n1 n2]", used)
	}
	if pl.NodesInService() != 2 {
		t.Errorf("NodesInService() = %d, want 2", pl.NodesInService())
	}
}

func TestPlacementVNFsOn(t *testing.T) {
	pl := testPlacement()
	got := pl.VNFsOn("n1")
	if len(got) != 2 || got[0] != "fw" || got[1] != "nat" {
		t.Errorf("VNFsOn(n1) = %v", got)
	}
	if got := pl.VNFsOn("n3"); len(got) != 0 {
		t.Errorf("VNFsOn(n3) = %v, want empty", got)
	}
}

func TestPlacementLoadAndResidual(t *testing.T) {
	p := testProblem()
	pl := testPlacement()
	load := pl.Load(p)
	if load["n1"] != 50 {
		t.Errorf("Load(n1) = %v, want 50", load["n1"])
	}
	if load["n2"] != 15 {
		t.Errorf("Load(n2) = %v, want 15", load["n2"])
	}
	rst := pl.Residual(p)
	if rst["n1"] != 50 || rst["n2"] != 35 || rst["n3"] != 200 {
		t.Errorf("Residual() = %v", rst)
	}
}

func TestPlacementValidate(t *testing.T) {
	p := testProblem()
	if err := testPlacement().Validate(p); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}

	t.Run("unplaced vnf", func(t *testing.T) {
		pl := NewPlacement()
		pl.Assign("fw", "n1")
		checkErr(t, pl.Validate(p), "unplaced")
	})
	t.Run("unknown vnf", func(t *testing.T) {
		pl := testPlacement()
		pl.Assign("ghost", "n1")
		checkErr(t, pl.Validate(p), "unknown vnf")
	})
	t.Run("unknown node", func(t *testing.T) {
		pl := testPlacement()
		pl.Assign("fw", "nX")
		checkErr(t, pl.Validate(p), "unknown node")
	})
	t.Run("over capacity", func(t *testing.T) {
		pl := NewPlacement()
		pl.Assign("fw", "n2")  // 20
		pl.Assign("nat", "n2") // 30
		pl.Assign("ids", "n2") // 15 → 65 > 50
		checkErr(t, pl.Validate(p), "over capacity")
	})
}

func TestPlacementAverageUtilization(t *testing.T) {
	p := testProblem()
	pl := testPlacement()
	// n1: 50/100 = 0.5; n2: 15/50 = 0.3 → mean 0.4.
	if got := pl.AverageUtilization(p); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("AverageUtilization() = %v, want 0.4", got)
	}
	if got := NewPlacement().AverageUtilization(p); got != 0 {
		t.Errorf("empty placement utilization = %v, want 0", got)
	}
}

func TestPlacementResourceOccupation(t *testing.T) {
	p := testProblem()
	pl := testPlacement()
	if got := pl.ResourceOccupation(p); got != 150 {
		t.Errorf("ResourceOccupation() = %v, want 150 (n1+n2)", got)
	}
}

func TestPlacementTraversesAndSpan(t *testing.T) {
	p := testProblem()
	pl := testPlacement()
	r3, _ := p.Request("r3") // chain ids,fw,nat → nodes n2,n1,n1
	if !pl.Traverses(r3, "n1") || !pl.Traverses(r3, "n2") {
		t.Error("Traverses missed nodes on r3's path")
	}
	if pl.Traverses(r3, "n3") {
		t.Error("Traverses matched unused node")
	}
	if got := pl.NodeSpan(r3); got != 2 {
		t.Errorf("NodeSpan(r3) = %d, want 2", got)
	}
	r2, _ := p.Request("r2") // chain fw → n1 only
	if got := pl.NodeSpan(r2); got != 1 {
		t.Errorf("NodeSpan(r2) = %d, want 1", got)
	}
}

func TestPlacementClone(t *testing.T) {
	pl := testPlacement()
	cl := pl.Clone()
	cl.Assign("fw", "n3")
	if v, _ := pl.Node("fw"); v != "n1" {
		t.Error("Clone shares map with original")
	}
}

func TestPlacementExtrasLoad(t *testing.T) {
	p := &Problem{
		Nodes: []Node{
			{ID: "n1", Capacity: 100, Extras: []float64{32, 10}},
			{ID: "n2", Capacity: 100, Extras: []float64{32, 10}},
		},
		VNFs: []VNF{
			{ID: "a", Instances: 2, Demand: 10, ServiceRate: 1, Extras: []float64{4, 1}},
			{ID: "b", Instances: 1, Demand: 10, ServiceRate: 1, Extras: []float64{6, 2}},
		},
	}
	pl := NewPlacement()
	pl.Assign("a", "n1")
	pl.Assign("b", "n1")
	load := pl.ExtrasLoad(p)
	if len(load) != 1 {
		t.Fatalf("ExtrasLoad = %v", load)
	}
	// a contributes 2×{4,1}, b contributes 1×{6,2} → {14, 4}.
	if load["n1"][0] != 14 || load["n1"][1] != 4 {
		t.Errorf("n1 extras load = %v, want [14 4]", load["n1"])
	}
	if err := pl.Validate(p); err != nil {
		t.Errorf("valid extras placement rejected: %v", err)
	}

	// Overload dimension 1: 3 more b-like VNFs would exceed 10.
	p.VNFs = append(p.VNFs, VNF{ID: "c", Instances: 4, Demand: 1, ServiceRate: 1, Extras: []float64{1, 2}})
	pl.Assign("c", "n1") // dim1: 4 + 8 = 12 > 10
	if err := pl.Validate(p); err == nil {
		t.Error("extras overload accepted")
	}
}

func TestPlacementExtrasLoadCPUOnly(t *testing.T) {
	p := testProblem()
	pl := testPlacement()
	if got := pl.ExtrasLoad(p); got != nil {
		t.Errorf("CPU-only ExtrasLoad = %v, want nil", got)
	}
}
