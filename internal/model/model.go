// Package model defines the domain types shared by every nfvchain subsystem:
// VNFs, computing nodes, requests with their chains, placements of VNFs onto
// nodes, and schedules of requests onto service instances.
//
// The vocabulary follows the ICDCS'17 paper "Joint Optimization of Chain
// Placement and Request Scheduling for Network Function Virtualization":
//
//   - A VNF f has M_f co-located service instances, each demanding D_f
//     resource units and serving packets at an exponential rate µ_f.
//   - A computing node v has a CPU-bounded capacity A_v in the same units.
//   - A request r emits a Poisson packet stream at rate λ_r and must
//     traverse an ordered chain of VNFs; packets are delivered correctly
//     with probability P_r, and lost packets are retransmitted, inflating
//     the effective arrival rate to λ_r / P_r (Eq. 7).
package model

import (
	"errors"
	"fmt"
	"sort"
)

// VNFID identifies a virtual network function.
type VNFID string

// NodeID identifies a computing node.
type NodeID string

// RequestID identifies a request (an end-to-end flow with a VNF chain).
type RequestID string

// VNF is a virtual network function together with its deployment sizing.
// All M_f service instances of a VNF are co-located on a single computing
// node (paper Eq. 2); replicas on other nodes are modeled as distinct VNFs.
type VNF struct {
	ID          VNFID   `json:"id"`
	Name        string  `json:"name,omitempty"`
	Category    string  `json:"category,omitempty"`
	Instances   int     `json:"instances"`   // M_f ≥ 1
	Demand      float64 `json:"demand"`      // D_f, resource units per instance
	ServiceRate float64 `json:"serviceRate"` // µ_f, packets/s per instance
	// Extras holds per-instance demands for additional resources (memory,
	// bandwidth, …). The paper treats CPU as the bottleneck and models
	// other resources "as additional constraints": placement optimizes on
	// Demand and merely respects Extras. Length must match the problem's
	// extra-resource dimensionality (empty = CPU-only).
	Extras []float64 `json:"extras,omitempty"`
}

// TotalDemand returns D_f^sum = M_f · D_f, the resource footprint the VNF
// occupies on whichever node hosts it.
func (f VNF) TotalDemand() float64 {
	return float64(f.Instances) * f.Demand
}

// TotalExtras returns the VNF's whole-bundle demand for each additional
// resource: M_f · Extras[i].
func (f VNF) TotalExtras() []float64 {
	if len(f.Extras) == 0 {
		return nil
	}
	out := make([]float64, len(f.Extras))
	for i, e := range f.Extras {
		out[i] = float64(f.Instances) * e
	}
	return out
}

// Validate reports the first structural problem with the VNF definition.
func (f VNF) Validate() error {
	switch {
	case f.ID == "":
		return errors.New("vnf: empty id")
	case f.Instances < 1:
		return fmt.Errorf("vnf %s: instances %d < 1", f.ID, f.Instances)
	case f.Demand < 0:
		return fmt.Errorf("vnf %s: negative demand %v", f.ID, f.Demand)
	case f.ServiceRate <= 0:
		return fmt.Errorf("vnf %s: service rate %v must be positive", f.ID, f.ServiceRate)
	}
	for i, e := range f.Extras {
		if e < 0 {
			return fmt.Errorf("vnf %s: negative extra demand %v at dimension %d", f.ID, e, i)
		}
	}
	return nil
}

// Node is a computing node (commodity server) of the datacenter network.
type Node struct {
	ID       NodeID  `json:"id"`
	Name     string  `json:"name,omitempty"`
	Capacity float64 `json:"capacity"` // A_v, resource units
	// Extras holds capacities for additional resources, index-aligned with
	// each VNF's Extras (empty = CPU-only).
	Extras []float64 `json:"extras,omitempty"`
}

// Validate reports the first structural problem with the node definition.
func (n Node) Validate() error {
	switch {
	case n.ID == "":
		return errors.New("node: empty id")
	case n.Capacity <= 0:
		return fmt.Errorf("node %s: capacity %v must be positive", n.ID, n.Capacity)
	}
	for i, e := range n.Extras {
		if e <= 0 {
			return fmt.Errorf("node %s: extra capacity %v at dimension %d must be positive", n.ID, e, i)
		}
	}
	return nil
}

// Request is a flow that must traverse an ordered chain of VNFs.
type Request struct {
	ID           RequestID `json:"id"`
	Chain        []VNFID   `json:"chain"`        // ordered; at most MaxChainLength entries
	Rate         float64   `json:"rate"`         // λ_r, packets/s external arrival rate
	DeliveryProb float64   `json:"deliveryProb"` // P_r ∈ (0,1]; packet loss rate is 1−P_r
}

// MaxChainLength is the longest chain the paper's workloads use.
const MaxChainLength = 6

// EffectiveRate returns λ_r / P_r, the retransmission-inflated arrival rate a
// request imposes on every service instance it is assigned to (Eq. 7).
func (r Request) EffectiveRate() float64 {
	return r.Rate / r.DeliveryProb
}

// Uses reports whether the request's chain contains VNF f (the paper's
// indicator U_r^f).
func (r Request) Uses(f VNFID) bool {
	for _, g := range r.Chain {
		if g == f {
			return true
		}
	}
	return false
}

// Validate reports the first structural problem with the request definition.
func (r Request) Validate() error {
	switch {
	case r.ID == "":
		return errors.New("request: empty id")
	case len(r.Chain) == 0:
		return fmt.Errorf("request %s: empty chain", r.ID)
	case r.Rate <= 0:
		return fmt.Errorf("request %s: rate %v must be positive", r.ID, r.Rate)
	case r.DeliveryProb <= 0 || r.DeliveryProb > 1:
		return fmt.Errorf("request %s: delivery probability %v outside (0,1]", r.ID, r.DeliveryProb)
	}
	seen := make(map[VNFID]struct{}, len(r.Chain))
	for _, f := range r.Chain {
		if f == "" {
			return fmt.Errorf("request %s: empty vnf id in chain", r.ID)
		}
		if _, dup := seen[f]; dup {
			return fmt.Errorf("request %s: vnf %s appears twice in chain", r.ID, f)
		}
		seen[f] = struct{}{}
	}
	return nil
}

// Problem bundles a complete placement-and-scheduling instance.
type Problem struct {
	Nodes    []Node    `json:"nodes"`
	VNFs     []VNF     `json:"vnfs"`
	Requests []Request `json:"requests"`
}

// Validate checks every component plus cross-references: unique IDs, chains
// referring to defined VNFs, and M_f not exceeding the number of requests
// that use f when requests are present (paper Eq. 3 permits M_f ≤ Σ U_r^f).
func (p *Problem) Validate() error {
	if len(p.Nodes) == 0 {
		return errors.New("problem: no nodes")
	}
	if len(p.VNFs) == 0 {
		return errors.New("problem: no vnfs")
	}
	nodeIDs := make(map[NodeID]struct{}, len(p.Nodes))
	for _, n := range p.Nodes {
		if err := n.Validate(); err != nil {
			return err
		}
		if _, dup := nodeIDs[n.ID]; dup {
			return fmt.Errorf("problem: duplicate node id %s", n.ID)
		}
		nodeIDs[n.ID] = struct{}{}
	}
	vnfIDs := make(map[VNFID]struct{}, len(p.VNFs))
	for _, f := range p.VNFs {
		if err := f.Validate(); err != nil {
			return err
		}
		if _, dup := vnfIDs[f.ID]; dup {
			return fmt.Errorf("problem: duplicate vnf id %s", f.ID)
		}
		vnfIDs[f.ID] = struct{}{}
	}
	// Extra-resource dimensionality must be uniform across nodes and VNFs.
	dims := len(p.Nodes[0].Extras)
	for _, n := range p.Nodes {
		if len(n.Extras) != dims {
			return fmt.Errorf("problem: node %s has %d extra resources, want %d", n.ID, len(n.Extras), dims)
		}
	}
	for _, f := range p.VNFs {
		if len(f.Extras) != dims {
			return fmt.Errorf("problem: vnf %s has %d extra resources, want %d", f.ID, len(f.Extras), dims)
		}
	}
	reqIDs := make(map[RequestID]struct{}, len(p.Requests))
	for _, r := range p.Requests {
		if err := r.Validate(); err != nil {
			return err
		}
		if _, dup := reqIDs[r.ID]; dup {
			return fmt.Errorf("problem: duplicate request id %s", r.ID)
		}
		reqIDs[r.ID] = struct{}{}
		for _, f := range r.Chain {
			if _, ok := vnfIDs[f]; !ok {
				return fmt.Errorf("problem: request %s references undefined vnf %s", r.ID, f)
			}
		}
	}
	return nil
}

// VNF returns the VNF with the given id, or false when undefined.
func (p *Problem) VNF(id VNFID) (VNF, bool) {
	for _, f := range p.VNFs {
		if f.ID == id {
			return f, true
		}
	}
	return VNF{}, false
}

// Node returns the node with the given id, or false when undefined.
func (p *Problem) Node(id NodeID) (Node, bool) {
	for _, n := range p.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Request returns the request with the given id, or false when undefined.
func (p *Problem) Request(id RequestID) (Request, bool) {
	for _, r := range p.Requests {
		if r.ID == id {
			return r, true
		}
	}
	return Request{}, false
}

// RequestsUsing returns the ids of requests whose chain contains f, in the
// order they appear in p.Requests (the paper's set R_f).
func (p *Problem) RequestsUsing(f VNFID) []RequestID {
	var ids []RequestID
	for _, r := range p.Requests {
		if r.Uses(f) {
			ids = append(ids, r.ID)
		}
	}
	return ids
}

// TotalDemand returns Σ_f M_f·D_f, the aggregate resource footprint of every
// VNF in the problem.
func (p *Problem) TotalDemand() float64 {
	var sum float64
	for _, f := range p.VNFs {
		sum += f.TotalDemand()
	}
	return sum
}

// TotalCapacity returns Σ_v A_v.
func (p *Problem) TotalCapacity() float64 {
	var sum float64
	for _, n := range p.Nodes {
		sum += n.Capacity
	}
	return sum
}

// SortedVNFsByDemand returns a copy of p.VNFs sorted by total demand in
// descending order, breaking ties by id for determinism. This is the scan
// order of every decreasing-fit placement algorithm.
func (p *Problem) SortedVNFsByDemand() []VNF {
	out := make([]VNF, len(p.VNFs))
	copy(out, p.VNFs)
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := out[i].TotalDemand(), out[j].TotalDemand()
		if di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ExtraResources returns the number of additional resource dimensions
// (0 for CPU-only problems).
func (p *Problem) ExtraResources() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes[0].Extras)
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		Nodes:    make([]Node, len(p.Nodes)),
		VNFs:     make([]VNF, len(p.VNFs)),
		Requests: make([]Request, len(p.Requests)),
	}
	for i, n := range p.Nodes {
		nn := n
		nn.Extras = append([]float64(nil), n.Extras...)
		q.Nodes[i] = nn
	}
	for i, f := range p.VNFs {
		ff := f
		ff.Extras = append([]float64(nil), f.Extras...)
		q.VNFs[i] = ff
	}
	for i, r := range p.Requests {
		rr := r
		rr.Chain = append([]VNFID(nil), r.Chain...)
		q.Requests[i] = rr
	}
	return q
}
