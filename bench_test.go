package nfvchain

// Benchmark harness: one BenchmarkFigNN per evaluation figure of the paper
// (each iteration regenerates that figure's full sweep at reduced averaging
// — run `go run ./cmd/nfvsim -fig all` for the paper-protocol curves), plus
// micro-benchmarks of the core algorithms and ablation benches for the
// design choices DESIGN.md calls out (BFDSU's weighted randomization vs
// deterministic best fit; RCKK's reverse pairing vs forward combining).

import (
	"fmt"
	"runtime"
	"testing"

	"nfvchain/internal/cluster"
	"nfvchain/internal/dynamic"
	"nfvchain/internal/experiment"
	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/queueing"
	"nfvchain/internal/rng"
	"nfvchain/internal/routing"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
	"nfvchain/internal/topology"
	"nfvchain/internal/workload"
)

// benchConfig keeps per-iteration cost manageable; shapes (who wins, by
// what factor) are preserved, only curve smoothness is reduced.
func benchConfig() experiment.Config {
	return experiment.Config{Seed: 1, PlacementTrials: 3, SchedulingTrials: 20}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Series) == 0 {
			b.Fatalf("%s produced no series", id)
		}
	}
}

// One benchmark per paper figure (Figs. 5–16 and the p99 tail statistics).

func BenchmarkFig05Utilization(b *testing.B)        { benchFigure(b, "fig5") }
func BenchmarkFig06UtilizationScale(b *testing.B)   { benchFigure(b, "fig6") }
func BenchmarkFig07UtilizationNodes(b *testing.B)   { benchFigure(b, "fig7") }
func BenchmarkFig08NodesInService(b *testing.B)     { benchFigure(b, "fig8") }
func BenchmarkFig09ResourceOccupation(b *testing.B) { benchFigure(b, "fig9") }
func BenchmarkFig10Iterations(b *testing.B)         { benchFigure(b, "fig10") }
func BenchmarkFig11ResponseP098(b *testing.B)       { benchFigure(b, "fig11") }
func BenchmarkFig12ResponseP100(b *testing.B)       { benchFigure(b, "fig12") }
func BenchmarkFig13ResponseInstances098(b *testing.B) {
	benchFigure(b, "fig13")
}
func BenchmarkFig14ResponseInstances100(b *testing.B) {
	benchFigure(b, "fig14")
}
func BenchmarkFig15RejectionLowLoss(b *testing.B)  { benchFigure(b, "fig15") }
func BenchmarkFig16RejectionHighLoss(b *testing.B) { benchFigure(b, "fig16") }
func BenchmarkFigTailP99(b *testing.B)             { benchFigure(b, "tail") }

// Extension experiments.

func BenchmarkFigAblationPlacement(b *testing.B)  { benchFigure(b, "ablation-placement") }
func BenchmarkFigAblationScheduling(b *testing.B) { benchFigure(b, "ablation-scheduling") }
func BenchmarkFigRobustness(b *testing.B)         { benchFigure(b, "robustness") }

// --- Placement micro-benchmarks --------------------------------------------

func placementInstance(b *testing.B, vnfs, requests, nodes int) *model.Problem {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.NumVNFs = vnfs
	cfg.NumRequests = requests
	cfg.NumNodes = nodes
	p, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	scale := 0.6 * p.TotalCapacity() / p.TotalDemand()
	for i := range p.VNFs {
		p.VNFs[i].Demand *= scale
	}
	return p
}

func benchPlacer(b *testing.B, mk func(seed uint64) placement.Algorithm) {
	p := placementInstance(b, 15, 200, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mk(uint64(i)).Place(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceBFDSU(b *testing.B) {
	benchPlacer(b, func(s uint64) placement.Algorithm { return &placement.BFDSU{Seed: s} })
}

func BenchmarkPlaceFFD(b *testing.B) {
	benchPlacer(b, func(uint64) placement.Algorithm { return placement.FFD{} })
}

func BenchmarkPlaceNAH(b *testing.B) {
	benchPlacer(b, func(uint64) placement.Algorithm { return placement.NAH{} })
}

// BenchmarkAblationPlacementRandomization compares BFDSU against its
// derandomized core (deterministic BFD): the gap in ns/op is the cost of the
// weighted draws; DESIGN.md's ablation tests measure the quality side.
func BenchmarkAblationPlacementRandomization(b *testing.B) {
	p := placementInstance(b, 15, 200, 10)
	b.Run("BFDSU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&placement.BFDSU{Seed: uint64(i)}).Place(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BFD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (placement.BFD{}).Place(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Scheduling micro-benchmarks -------------------------------------------

func schedulingItems(n int, seed uint64) []scheduling.Item {
	s := rng.New(seed)
	items := make([]scheduling.Item, n)
	for i := range items {
		items[i] = scheduling.Item{
			ID:     model.RequestID(fmt.Sprintf("r%04d", i)),
			Weight: s.Uniform(1, 100),
		}
	}
	return items
}

func benchPartitioner(b *testing.B, alg scheduling.Partitioner) {
	for _, n := range []int{50, 250, 1000, 2000} {
		items := schedulingItems(n, 7)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := alg.Partition(items, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScheduleRCKK(b *testing.B) { benchPartitioner(b, scheduling.RCKK{}) }
func BenchmarkScheduleCGA(b *testing.B)  { benchPartitioner(b, scheduling.CGA{}) }

// BenchmarkAblationReversePairing compares RCKK's reverse combination
// against the forward-combining variant at equal n.
func BenchmarkAblationReversePairing(b *testing.B) {
	items := schedulingItems(250, 7)
	b.Run("RCKK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (scheduling.RCKK{}).Partition(items, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("KKForward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (scheduling.KKForward{}).Partition(items, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAdmissionControl(b *testing.B) {
	p := placementInstance(b, 15, 500, 10)
	sched, err := scheduling.ScheduleAll(p, scheduling.CGA{ArrivalOrder: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheduling.ApplyAdmissionControl(p, sched); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Queueing and simulation micro-benchmarks ------------------------------

func BenchmarkJacksonSolve(b *testing.B) {
	n, err := queueing.ChainNetwork(2, 0.98, []float64{100, 120, 90, 150, 110, 95})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorSecond(b *testing.B) {
	// One simulated second of a 3-stage chain at 200 pps.
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 1, Demand: 1, ServiceRate: 500},
			{ID: "f2", Instances: 1, Demand: 1, ServiceRate: 400},
			{ID: "f3", Instances: 1, Demand: 1, ServiceRate: 600},
		},
		Requests: []model.Request{
			{ID: "r", Chain: []model.VNFID{"f1", "f2", "f3"}, Rate: 200, DeliveryProb: 0.98},
		},
	}
	sched := model.NewSchedule()
	for _, f := range prob.VNFs {
		sched.Assign("r", f.ID, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Run(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 1, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// largeHorizonFixture is a 5-request, 4-VNF system for the long-horizon DES
// benchmarks: 1500 packet arrivals per simulated second across the fleet,
// sized so every instance stays stable (ρ ≈ 0.75 at the hottest one) —
// an unstable fixture would benchmark unbounded queue growth, not the
// event-loop hot path.
func largeHorizonFixture() (*model.Problem, *model.Schedule) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 10000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 2, Demand: 1, ServiceRate: 1200},
			{ID: "f2", Instances: 2, Demand: 1, ServiceRate: 1200},
			{ID: "f3", Instances: 1, Demand: 1, ServiceRate: 2000},
			{ID: "f4", Instances: 1, Demand: 1, ServiceRate: 2000},
		},
	}
	for i := 0; i < 5; i++ {
		prob.Requests = append(prob.Requests, model.Request{
			ID:    model.RequestID(fmt.Sprintf("r%d", i)),
			Chain: []model.VNFID{"f1", "f2", "f3", "f4"}, Rate: 300, DeliveryProb: 0.98,
		})
	}
	sched := model.NewSchedule()
	for i, r := range prob.Requests {
		for _, f := range prob.VNFs {
			sched.Assign(r.ID, f.ID, i%f.Instances)
		}
	}
	return prob, sched
}

// BenchmarkSimulatorLargeHorizon exercises the DES at scale: 30 simulated
// seconds × 2000 pps ≈ 60k packets (240k stage visits) per iteration. This
// is the trajectory benchmark for the event/packet pooling and ring-buffer
// work — allocs/op here is dominated by the per-event hot path.
func BenchmarkSimulatorLargeHorizon(b *testing.B) {
	prob, sched := largeHorizonFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Run(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 30, Warmup: 2, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorDeepHorizon stretches the fleet workload to a 300 s
// horizon — roughly 4.5M events, ten times BenchmarkSimulatorLargeHorizon —
// which pushes AgendaAuto past its expected-event threshold onto the ladder
// queue. One reused Simulator serves every iteration, so allocs/op is the
// steady-state sweep cost.
func BenchmarkSimulatorDeepHorizon(b *testing.B) {
	prob, sched := largeHorizonFixture()
	sim := simulate.NewSimulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Reset(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 300, Warmup: 2, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorStreamReplay runs the fleet workload through the
// streaming arrival path: per-request renewal sources superposed by a
// MergedStream feed Config.TraceStream one row at a time, with the
// ExpectedArrivals hint sizing the agenda up front. Same event volume as
// BenchmarkSimulatorLargeHorizon, but the simulator holds one staged
// arrival per cursor instead of the whole trace. CI runs one iteration as
// a smoke test of the pull-based path; the trajectory numbers live in
// results/BENCH.json (Simulator/stream-replay).
func BenchmarkSimulatorStreamReplay(b *testing.B) {
	prob, sched := largeHorizonFixture()
	sim := simulate.NewSimulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srcs, err := workload.TraceSources(prob, workload.InterArrivalExponential, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Reset(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 30, Warmup: 2, Seed: uint64(i),
			TraceStream:      workload.NewMergedStream(srcs),
			ExpectedArrivals: 45_000, // ~1500 pps × 30 s
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorDropRetransmit measures the NACK loss-feedback path: a
// stable M/M/1/4 queue (ρ = 0.8) whose blocking losses are re-injected from
// the source. The system must stay stable — an overloaded queue with
// retransmission snowballs into an event storm, which is a workload property
// rather than a simulator hot path.
func BenchmarkSimulatorDropRetransmit(b *testing.B) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f", Instances: 1, Demand: 1, ServiceRate: 100},
		},
		Requests: []model.Request{
			{ID: "r", Chain: []model.VNFID{"f"}, Rate: 80, DeliveryProb: 0.98},
		},
	}
	sched := model.NewSchedule()
	sched.Assign("r", "f", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Run(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 30, Warmup: 2, Seed: uint64(i),
			BufferSize: 3, DropPolicy: simulate.DropRetransmit, RetransmitDelay: 0.005,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorClusterParallel composes 8 datacenter simulators under
// the conservative-window cluster driver with the worker pool sized to the
// machine (workers = GOMAXPROCS): sparse global traffic against steady local
// load, so windows carry enough events for the pool to engage. CI runs one
// iteration as a smoke test of the parallel path; the trajectory numbers
// live in results/BENCH.json (Simulator/cluster-parallel).
func BenchmarkSimulatorClusterParallel(b *testing.B) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 1, Demand: 1, ServiceRate: 500},
			{ID: "f2", Instances: 1, Demand: 1, ServiceRate: 600},
		},
		Requests: []model.Request{
			{ID: "local", Chain: []model.VNFID{"f1", "f2"}, Rate: 150, DeliveryProb: 0.98},
			{ID: "global", Chain: []model.VNFID{"f1", "f2"}, Rate: 150, DeliveryProb: 0.98},
		},
	}
	sched := model.NewSchedule()
	for _, r := range prob.Requests {
		for _, f := range prob.VNFs {
			sched.Assign(r.ID, f.ID, 0)
		}
	}
	const dcs = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cluster.Config{
			WANLatency: 0.005,
			Router:     cluster.LeastLoaded{},
			Global:     []cluster.GlobalRequest{{ID: "global", Rate: 4, Home: 0}},
			Seed:       uint64(i),
			Workers:    runtime.GOMAXPROCS(0),
		}
		for d := 0; d < dcs; d++ {
			cfg.Datacenters = append(cfg.Datacenters, cluster.Datacenter{
				Name: fmt.Sprintf("dc%d", d),
				Sim: simulate.Config{
					Problem: prob, Schedule: sched, Horizon: 10, Warmup: 1,
					Seed: uint64(i)*dcs + uint64(d),
				},
			})
		}
		c, err := cluster.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleCKK(b *testing.B) {
	items := schedulingItems(40, 7) // complete search territory
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (scheduling.CKK{MaxNodes: 20_000}).Partition(items, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLocality compares plain BFDSU against the topology-aware
// variant on a fat-tree: the ns/op gap is the price of the locality factor;
// the routing tests measure the network-delay payoff.
func BenchmarkAblationLocality(b *testing.B) {
	topo, err := topology.FatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.NumNodes = 16
	cfg.NumRequests = 200
	p, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := range p.Nodes {
		p.Nodes[i].ID = model.NodeID(topo.ComputeVertices()[i])
	}
	scale := 0.6 * p.TotalCapacity() / p.TotalDemand()
	for i := range p.VNFs {
		p.VNFs[i].Demand *= scale
	}
	b.Run("BFDSU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&placement.BFDSU{Seed: uint64(i)}).Place(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TA-BFDSU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&routing.TopologyAware{Topo: topo, Seed: uint64(i)}).Place(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDynamicAdmitDepart(b *testing.B) {
	base := &model.Problem{
		Nodes: []model.Node{{ID: "n1", Capacity: 10000}, {ID: "n2", Capacity: 10000}},
		VNFs: []model.VNF{
			{ID: "fw", Instances: 4, Demand: 50, ServiceRate: 10000},
			{ID: "nat", Instances: 2, Demand: 30, ServiceRate: 10000},
		},
	}
	ctrl, err := dynamic.New(dynamic.Config{Problem: base, SetupCost: dynamic.SetupCostClickOS})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i)
		id := model.RequestID(fmt.Sprintf("r%d", i))
		out, err := ctrl.Admit(model.Request{
			ID: id, Chain: []model.VNFID{"fw", "nat"}, Rate: 5, DeliveryProb: 0.98,
		}, now)
		if err != nil {
			b.Fatal(err)
		}
		if out.Accepted {
			if err := ctrl.Depart(id, now); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkImprovePlacement(b *testing.B) {
	p := placementInstance(b, 15, 200, 10)
	res, err := (placement.WFD{}).Place(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.Improve(p, res.Placement, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImproveSchedule(b *testing.B) {
	items := schedulingItems(250, 7)
	assign, err := (scheduling.RoundRobin{}).Partition(items, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheduling.Improve(items, assign, 5, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndOptimize(b *testing.B) {
	p := placementInstance(b, 15, 200, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(p, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
