package nfvchain

import (
	"context"
	"io"

	"nfvchain/internal/cluster"
	"nfvchain/internal/control"
	"nfvchain/internal/core"
	"nfvchain/internal/dynamic"
	"nfvchain/internal/experiment"
	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/portfolio"
	"nfvchain/internal/repair"
	"nfvchain/internal/rng"
	"nfvchain/internal/routing"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
	"nfvchain/internal/topology"
	"nfvchain/internal/workload"
)

// Domain types re-exported from the internal model.
type (
	// VNFID identifies a virtual network function.
	VNFID = model.VNFID
	// NodeID identifies a computing node.
	NodeID = model.NodeID
	// RequestID identifies a request.
	RequestID = model.RequestID
	// VNF is a virtual network function with its deployment sizing.
	VNF = model.VNF
	// Node is a computing node (commodity server).
	Node = model.Node
	// Request is a flow traversing an ordered VNF chain.
	Request = model.Request
	// Problem bundles a complete placement-and-scheduling instance.
	Problem = model.Problem
	// Placement maps each VNF to its hosting node.
	Placement = model.Placement
	// Schedule maps each (request, VNF) pair to a service instance.
	Schedule = model.Schedule
)

// Pipeline types re-exported from the core optimizer.
type (
	// Options configures the two-phase pipeline; the zero value selects the
	// paper's proposed algorithms (BFDSU + RCKK with admission control).
	Options = core.Options
	// Solution is the output of Optimize.
	Solution = core.Solution
	// Evaluation carries the analytic objective values of a solution.
	Evaluation = core.Evaluation
	// SimulationConfig carries discrete-event simulation knobs.
	SimulationConfig = core.SimulationConfig
	// SimulationResults aggregates one simulation run's measurements.
	SimulationResults = simulate.Results
	// ServiceDist selects the simulator's service-time distribution.
	ServiceDist = simulate.ServiceDist
	// DropPolicy selects the simulator's full-buffer behavior.
	DropPolicy = simulate.DropPolicy
	// AgendaKind selects the simulator's event-queue backend. Every kind
	// pops events in the same (time, seq) order, so simulation results are
	// bit-identical regardless of the choice.
	AgendaKind = simulate.AgendaKind
)

// Agenda kinds for SimulationConfig.Agenda.
const (
	// AgendaAuto picks the backend from the run's expected event count
	// (the default).
	AgendaAuto = simulate.AgendaAuto
	// AgendaHeap forces the value-typed 4-ary min-heap.
	AgendaHeap = simulate.AgendaHeap
	// AgendaLadder forces the ladder queue (calendar-queue family).
	AgendaLadder = simulate.AgendaLadder
)

// ParseAgendaKind parses a textual agenda kind (auto|heap|ladder).
func ParseAgendaKind(s string) (AgendaKind, error) { return simulate.ParseAgendaKind(s) }

// Service-time distributions for SimulationConfig.ServiceDist.
const (
	// ServiceExponential is the paper's M/M/1 assumption (CV = 1).
	ServiceExponential = simulate.ServiceExponential
	// ServiceDeterministic models fixed per-packet work (CV = 0).
	ServiceDeterministic = simulate.ServiceDeterministic
	// ServiceLogNormal models heavy-tailed processing (CV ≈ 1.31).
	ServiceLogNormal = simulate.ServiceLogNormal
)

// Drop policies for SimulationConfig.DropPolicy.
const (
	// DropDiscard silently discards packets meeting a full buffer (default).
	DropDiscard = simulate.DropDiscard
	// DropRetransmit re-injects dropped packets from the source after
	// SimulationConfig.RetransmitDelay (NACK loss feedback).
	DropRetransmit = simulate.DropRetransmit
)

// Cluster mode: N datacenter simulators composed under one global clock,
// re-exported from internal/cluster and internal/core.
type (
	// ClusterOptions configures the multi-datacenter pipeline: region count,
	// the fraction of requests promoted to cluster-level flows, and the
	// per-region pipeline Options.
	ClusterOptions = core.ClusterOptions
	// ClusterSolution is the per-region output of OptimizeCluster plus the
	// shared global flow list.
	ClusterSolution = core.ClusterSolution
	// ClusterSimConfig carries the cluster-level simulation knobs (WAN
	// latency, routing policy, cluster seed) on top of the per-region
	// SimulationConfig.
	ClusterSimConfig = core.ClusterSimConfig
	// ClusterResults aggregates one cluster run: per-datacenter results plus
	// cluster-wide sums and routing accounting (WAN hops, per-DC shares).
	ClusterResults = cluster.Results
	// ClusterRouter is a pluggable cross-datacenter routing/admission
	// policy observing live per-datacenter state.
	ClusterRouter = cluster.Router
	// ClusterDCState is the live per-datacenter view a ClusterRouter
	// observes for each routing decision.
	ClusterDCState = cluster.DCState
	// GlobalRequest is a cluster-level flow routed across datacenters per
	// arrival.
	GlobalRequest = cluster.GlobalRequest
)

// OptimizeCluster partitions the problem into regions (requests dealt
// round-robin, every region keeping the full node template) and runs the
// two-phase pipeline per region; a GlobalFraction share of requests becomes
// cluster-level flows provisioned in every region.
func OptimizeCluster(base *Problem, opts ClusterOptions) (*ClusterSolution, error) {
	return core.OptimizeCluster(base, opts)
}

// SimulateCluster composes one Simulator per region under a single global
// clock — advancing whichever datacenter holds the earliest pending event —
// with global arrivals routed per the configured policy and charged a WAN
// entry hop when served away from home.
func SimulateCluster(cs *ClusterSolution, cfg ClusterSimConfig) (*ClusterResults, error) {
	return core.SimulateCluster(cs, cfg)
}

// SimulateClusterContext is SimulateCluster with cancellation.
func SimulateClusterContext(ctx context.Context, cs *ClusterSolution, cfg ClusterSimConfig) (*ClusterResults, error) {
	return core.SimulateClusterContext(ctx, cs, cfg)
}

// NewClusterRouter parses a routing policy name
// (locality|least-loaded|weighted) into its ClusterRouter.
func NewClusterRouter(policy string) (ClusterRouter, error) {
	return cluster.ParseRoutePolicy(policy)
}

// ClusterRoutePolicies lists the built-in routing policy names.
func ClusterRoutePolicies() []string { return cluster.RoutePolicies() }

// Fault injection and self-healing, re-exported.
type (
	// FaultPlan injects node failures into a simulation: random MTBF/MTTR
	// chains and/or scheduled outages. nil disables fault injection.
	FaultPlan = simulate.FaultPlan
	// Outage is one scheduled node outage of a FaultPlan.
	Outage = simulate.Outage
	// FailurePolicy selects the fate of packets caught at failed instances.
	FailurePolicy = simulate.FailurePolicy
	// FaultHook observes node transitions mid-run and may repair the
	// simulation through the RepairControl it receives.
	FaultHook = simulate.FaultHook
	// RepairControl is the handle a FaultHook uses to reroute requests and
	// boot replacement instances at simulated time.
	RepairControl = simulate.RepairControl
	// RepairConfig parameterizes a self-healing repair controller.
	RepairConfig = repair.Config
	// RepairController reschedules and re-places around node failures; pass
	// it as SimulationConfig.FaultHook.
	RepairController = repair.Controller
	// RepairMode selects how much of the repair machinery is active.
	RepairMode = repair.Mode
	// RepairStats counts one run's repair activity.
	RepairStats = repair.Stats
)

// Failure policies for SimulationConfig.FailurePolicy.
const (
	// FailDrop counts packets caught at a failed instance as failure drops
	// (crash loss, the default).
	FailDrop = simulate.FailDrop
	// FailRetransmit re-injects them from the source after
	// SimulationConfig.RetransmitDelay (NACK loss feedback).
	FailRetransmit = simulate.FailRetransmit
)

// Repair modes for RepairConfig.Mode.
const (
	// RepairNone observes failures without acting (the baseline).
	RepairNone = repair.ModeNone
	// RepairReschedule rebalances requests across surviving instances.
	RepairReschedule = repair.ModeReschedule
	// RepairRescheduleReplace additionally boots replacement instances on
	// surviving nodes, paying the configured setup cost.
	RepairRescheduleReplace = repair.ModeRescheduleReplace
)

// NewRepairController builds a self-healing controller for one simulation
// run; wire it in via SimulationConfig.FaultHook alongside a FaultPlan.
func NewRepairController(cfg RepairConfig) (*RepairController, error) {
	return repair.New(cfg)
}

// ParseRepairMode parses a textual repair mode (none|reschedule|replace).
func ParseRepairMode(s string) (RepairMode, error) { return repair.ParseMode(s) }

// Online control plane, re-exported.
type (
	// ControlHook receives periodic controller ticks when wired in via
	// SimulationConfig.Control (+ ControlInterval).
	ControlHook = simulate.ControlHook
	// ControlPlane is the observation-and-actuation handle a ControlHook
	// receives at each tick.
	ControlPlane = simulate.ControlPlane
	// InstanceObs is one instance's control-plane observation at a tick.
	InstanceObs = simulate.InstanceObs
	// PreemptionPlan extends a FaultPlan with spot-style correlated capacity
	// loss: drawn node groups go down together, with optional advance notice.
	PreemptionPlan = simulate.PreemptionPlan
	// PreemptionNoticeHook is optionally implemented by a FaultHook to
	// receive advance notice of correlated preemptions.
	PreemptionNoticeHook = simulate.PreemptionNoticeHook
	// ControlConfig parameterizes the pool-manager controller.
	ControlConfig = control.Config
	// Controller is the online pool manager: autoscaling, migration and
	// graceful degradation on top of the repair machinery. Wire one value in
	// as both SimulationConfig.FaultHook and SimulationConfig.Control.
	Controller = control.Controller
	// ControlPolicy selects how much of the control plane is active.
	ControlPolicy = control.Policy
	// ControlStats counts one run's control-plane activity.
	ControlStats = control.Stats
)

// Control policies for ControlConfig.Policy, ordered by escalation.
const (
	// ControlNone disables the control plane (the baseline).
	ControlNone = control.PolicyNone
	// ControlRepair reacts to node transitions like a repair controller.
	ControlRepair = control.PolicyRepair
	// ControlAutoscale adds utilization-driven scaling and admission
	// shedding at each tick.
	ControlAutoscale = control.PolicyAutoscale
	// ControlAutoscaleMigrate additionally migrates instances off failed,
	// hot, and about-to-be-preempted nodes.
	ControlAutoscaleMigrate = control.PolicyAutoscaleMigrate
)

// NewController builds an online pool-manager controller for one simulation
// run; wire it in via SimulationConfig.FaultHook and SimulationConfig.Control.
func NewController(cfg ControlConfig) (*Controller, error) { return control.New(cfg) }

// ParseControlPolicy parses a textual control policy
// (none|repair|autoscale|autoscale+migrate).
func ParseControlPolicy(s string) (ControlPolicy, error) { return control.ParsePolicy(s) }

// Algorithm interfaces re-exported for callers supplying their own
// strategies via Options.
type (
	// PlacementAlgorithm is a VNF chain placement strategy.
	PlacementAlgorithm = placement.Algorithm
	// SchedulingAlgorithm partitions requests across service instances.
	SchedulingAlgorithm = scheduling.Partitioner
)

// Workload generation, re-exported.
type (
	// WorkloadConfig parameterizes synthetic problem generation.
	WorkloadConfig = workload.Config
	// Trace is a packet-level arrival trace for trace-driven simulation.
	Trace = workload.Trace
	// ArrivalSource is a pull-based arrival-time generator consumed by the
	// simulator (SimulationConfig.Sources) and the cluster driver.
	ArrivalSource = simulate.ArrivalSource
	// TraceSource is a forward-only (time, request) cursor for
	// constant-memory trace replay (SimulationConfig.TraceStream).
	TraceSource = simulate.TraceSource
	// WorkloadSource is a deterministic arrival process from the generator
	// tier (Poisson, log-normal renewal, diurnal NHPP, MMPP on/off).
	WorkloadSource = workload.Source
	// ClientClass describes one heterogeneous client population in a
	// ServeGen-style heavy-traffic workload mix.
	ClientClass = workload.ClientClass
	// ClassWorkload is the per-request source set built from client classes.
	ClassWorkload = workload.ClassWorkload
	// TraceStream is a streaming cursor over a trace CSV.
	TraceStream = workload.TraceStream
	// MergedStream merges live generator sources into one time-ordered
	// arrival cursor in O(#sources) memory.
	MergedStream = workload.MergedStream
)

// DefaultClientClasses returns the baseline heavy-traffic mix: a steady
// Poisson majority, a diurnal NHPP cohort and a small bursty on/off cohort.
func DefaultClientClasses() []ClientClass { return workload.DefaultClasses() }

// BuildClassSources partitions the problem's requests across client classes
// and builds a deterministic arrival source per request; identical inputs
// (including seed) yield identical sources.
func BuildClassSources(p *Problem, classes []ClientClass, seed uint64) (*ClassWorkload, error) {
	return workload.BuildSources(p, classes, seed)
}

// NewTraceStream opens a streaming cursor over a trace CSV (as written by
// Trace.WriteCSV or cmd/tracegen), validating the header row.
func NewTraceStream(r io.Reader) (*TraceStream, error) { return workload.NewTraceStream(r) }

// NewMergedStream merges per-request arrival sources into one time-ordered
// cursor; it satisfies TraceSource, so class-generated workloads can be
// streamed into the simulator or serialized to CSV without materialization.
// Callers bound the pull by their horizon — generator sources never end.
func NewMergedStream(sources map[RequestID]WorkloadSource) *MergedStream {
	return workload.NewMergedStream(sources)
}

// Experiment harness, re-exported.
type (
	// ExperimentConfig tunes experiment averaging depth.
	ExperimentConfig = experiment.Config
	// ExperimentTable is the regenerated data behind one paper figure.
	ExperimentTable = experiment.Table
)

// Solver portfolio with anytime racing, re-exported.
type (
	// PortfolioSpec is one parsed portfolio entry: a solver name plus its
	// tuning parameters (see ParsePortfolioSpec for the grammar).
	PortfolioSpec = portfolio.Spec
	// PortfolioIncumbent is one monotone best-so-far improvement reported
	// by a racing solver (objective, iteration, elapsed time, solution).
	PortfolioIncumbent = portfolio.Incumbent
	// PortfolioObjective weighs nodes-in-service against mean request
	// latency in the portfolio's scalar lower-is-better objective.
	PortfolioObjective = portfolio.Objective
	// PortfolioSolver is the anytime solver interface every portfolio
	// member implements.
	PortfolioSolver = portfolio.Solver
	// RaceOptions configures SolveRace (portfolio, workers, seed, deadline
	// via context, incumbent callback).
	RaceOptions = core.RaceOptions
	// RaceResult reports a finished race: winner, per-solver outcomes, and
	// publication counters.
	RaceResult = portfolio.RaceResult
	// SolverOutcome is one racer's final result inside a RaceResult.
	SolverOutcome = portfolio.SolverOutcome
)

// ParsePortfolioSpec parses one solver spec, "name" or
// "name:key=value;key=value" — e.g. "sa:iters=20000;t0=2.0". Solver names
// are listed by PortfolioSolverNames.
func ParsePortfolioSpec(s string) (PortfolioSpec, error) { return portfolio.ParseSpec(s) }

// ParsePortfolioSpecs parses and validates a full portfolio (rejecting
// empty and oversized portfolios).
func ParsePortfolioSpecs(specs []string) ([]PortfolioSpec, error) { return portfolio.ParseSpecs(specs) }

// DefaultPortfolio returns the standard racing lineup: greedy, ffd, nah
// baselines plus the sa, lns, and pso metaheuristics at default budgets.
func DefaultPortfolio() []string { return portfolio.DefaultPortfolio() }

// PortfolioSolverNames lists the recognized portfolio solver names.
func PortfolioSolverNames() []string { return portfolio.SolverNames() }

// SolveRace races a portfolio of solvers on parallel workers sharing a
// best-so-far incumbent, and returns the winner finalized exactly like
// Optimize (admission control applied). Bound wall-clock with a context
// deadline; at a fixed RaceOptions.Seed each solver's incumbent trajectory
// is deterministic regardless of worker count.
func SolveRace(ctx context.Context, p *Problem, opts RaceOptions) (*Solution, *RaceResult, error) {
	return core.SolveRace(ctx, p, opts)
}

// Optimize runs the two-phase pipeline (placement, then scheduling with
// admission control) on the problem.
func Optimize(p *Problem, opts Options) (*Solution, error) {
	return core.Optimize(p, opts)
}

// Evaluate computes the analytic objectives of a solution: average node
// utilization (Eq. 13), nodes in service (Eq. 14), per-instance response
// times (Eq. 15) and total request latency including link hops (Eq. 16).
func Evaluate(sol *Solution) (*Evaluation, error) {
	return core.Evaluate(sol)
}

// Simulate runs the packet-level discrete-event simulator on a solution.
func Simulate(sol *Solution, cfg SimulationConfig) (*SimulationResults, error) {
	return core.Simulate(sol, cfg)
}

// SimulateContext is Simulate with cancellation: the simulator's event loop
// polls ctx every few thousand events and aborts with ctx.Err() when it
// fires. With a background context it is bit-identical to Simulate.
func SimulateContext(ctx context.Context, sol *Solution, cfg SimulationConfig) (*SimulationResults, error) {
	return core.SimulateContext(ctx, sol, cfg)
}

// ReadResultsJSON parses simulation results written with
// SimulationResults.WriteJSON (or nfvsim -json / the nfvd daemon).
func ReadResultsJSON(r io.Reader) (*SimulationResults, error) {
	return simulate.ReadResultsJSON(r)
}

// GenerateWorkload synthesizes a problem instance from the config;
// identical configs (including Seed) yield identical problems.
func GenerateWorkload(cfg WorkloadConfig) (*Problem, error) {
	return workload.Generate(cfg)
}

// DefaultWorkloadConfig returns the paper's baseline setup: 15 VNFs, 200
// requests, 10 nodes, chains of up to 6 VNFs, λ ∈ [1,100] pps, P = 0.98.
func DefaultWorkloadConfig() WorkloadConfig {
	return workload.DefaultConfig()
}

// GenerateTrace samples a packet-arrival trace for every request in the
// problem over the horizon (seconds), for trace-driven simulation.
func GenerateTrace(p *Problem, horizon float64, seed uint64) (*Trace, error) {
	return workload.GenerateTrace(p, horizon, workload.InterArrivalExponential, seed)
}

// Placement algorithm constructors.

// NewBFDSU returns the paper's priority-driven weighted placement algorithm.
func NewBFDSU(seed uint64) PlacementAlgorithm { return &placement.BFDSU{Seed: seed} }

// NewFFD returns the First Fit Decreasing baseline.
func NewFFD() PlacementAlgorithm { return placement.FFD{} }

// NewBFD returns deterministic Best Fit Decreasing.
func NewBFD() PlacementAlgorithm { return placement.BFD{} }

// NewWFD returns Worst Fit Decreasing (the spreading baseline).
func NewWFD() PlacementAlgorithm { return placement.WFD{} }

// NewNAH returns the chain-oriented Node Assignment Heuristic of Xia et al.
func NewNAH() PlacementAlgorithm { return placement.NAH{} }

// NewExactPlacer returns the branch-and-bound optimal placer for small
// instances.
func NewExactPlacer() PlacementAlgorithm { return &placement.Exact{} }

// Scheduling algorithm constructors.

// NewRCKK returns the paper's Reverse Complete Karmarkar-Karp scheduler.
func NewRCKK() SchedulingAlgorithm { return scheduling.RCKK{} }

// NewCGA returns the greedy (LPT) baseline scheduler.
func NewCGA() SchedulingAlgorithm { return scheduling.CGA{} }

// NewExactScheduler returns the branch-and-bound optimal partitioner for
// small instances.
func NewExactScheduler() SchedulingAlgorithm { return &scheduling.Exact{} }

// Topology substrate, re-exported.

// Topology is a datacenter network graph of computing nodes and switches.
type Topology = topology.Graph

// NewFatTree builds a k-ary fat-tree datacenter topology with k³/4
// computing nodes; k must be even.
func NewFatTree(k int) (*Topology, error) { return topology.FatTree(k) }

// NewSNDlibTopology returns one of the embedded SNDlib-style reference
// networks; see SNDlibTopologyNames.
func NewSNDlibTopology(name string) (*Topology, error) { return topology.SNDlib(name) }

// SNDlibTopologyNames lists the embedded reference networks.
func SNDlibTopologyNames() []string { return topology.SNDlibNames() }

// NewRandomTopology returns a seeded random connected topology of n
// computing nodes and about m links.
func NewRandomTopology(n, m int, seed uint64) (*Topology, error) {
	return topology.RandomConnected(n, m, rng.New(seed))
}

// NewCKK returns the Complete Karmarkar-Karp scheduler (bounded complete
// search; the first descent is RCKK).
func NewCKK() SchedulingAlgorithm { return scheduling.CKK{} }

// NewKKForward returns the forward-combining KK ablation variant.
func NewKKForward() SchedulingAlgorithm { return scheduling.KKForward{} }

// NewRoundRobin returns the cyclic-assignment baseline scheduler.
func NewRoundRobin() SchedulingAlgorithm { return scheduling.RoundRobin{} }

// Routing and locality.

// ChainRouter resolves placed chains to physical paths over a topology.
type ChainRouter = routing.Router

// ChainPath is one request's physical route under a placement.
type ChainPath = routing.Path

// NewChainRouter builds a router over the topology.
func NewChainRouter(g *Topology) (*ChainRouter, error) { return routing.NewRouter(g) }

// NewTopologyAwarePlacer returns the locality-extended BFDSU (TA-BFDSU):
// snug fits weighted toward nodes close to each VNF's chain peers.
func NewTopologyAwarePlacer(g *Topology, seed uint64) PlacementAlgorithm {
	return &routing.TopologyAware{Topo: g, Seed: seed}
}

// Dynamic (online) operation.

// DynamicConfig parameterizes the online controller.
type DynamicConfig = dynamic.Config

// DynamicController manages a live deployment: online admission, replica
// scale-out with setup costs, and idle scale-in.
type DynamicController = dynamic.Controller

// AdmitOutcome describes one online admission.
type AdmitOutcome = dynamic.AdmitOutcome

// Setup costs cited by the paper (seconds): a middlebox VM boot vs a
// ClickOS-style lightweight instantiation.
const (
	SetupCostVM      = dynamic.SetupCostVM
	SetupCostClickOS = dynamic.SetupCostClickOS
)

// NewDynamicController places the base VNFs and returns an online
// controller.
func NewDynamicController(cfg DynamicConfig) (*DynamicController, error) {
	return dynamic.New(cfg)
}

// AddMemoryDimension annotates a problem with a memory resource dimension,
// exercising the multi-resource "additional constraints" of the model.
func AddMemoryDimension(p *Problem, seed uint64) error {
	return workload.AddMemoryDimension(p, seed)
}

// Polish passes and bounds.

// ImprovePlacement runs a deterministic local search (node evacuation +
// relocation) on a feasible placement; the result never uses more nodes and
// respects every resource dimension.
func ImprovePlacement(p *Problem, pl *Placement) (*Placement, error) {
	return placement.Improve(p, pl, 0)
}

// ImproveSchedule runs a deterministic move/swap local search on a complete
// schedule; per-VNF makespans never grow.
func ImproveSchedule(p *Problem, s *Schedule) (*Schedule, error) {
	return scheduling.ImproveSchedule(p, s)
}

// PlacementLowerBound returns a provable lower bound on the number of nodes
// in service for any feasible placement (capacity covering + big-item
// pigeonhole, all resource dimensions).
func PlacementLowerBound(p *Problem) int { return placement.LowerBound(p) }

// TraceStats summarizes one request's arrival process in a recorded trace.
type TraceStats = workload.TraceStats

// AnalyzeTrace computes per-request arrival statistics — empirical rate,
// inter-arrival burstiness and a Kolmogorov–Smirnov Poisson check.
func AnalyzeTrace(t *Trace) []TraceStats { return workload.AnalyzeTrace(t) }

// AnalyzeArrivals is the one-pass streaming counterpart of AnalyzeTrace: it
// computes the same per-request statistics from any forward-only arrival
// cursor (a TraceStream, a MergedStream) in O(#requests) memory. A positive
// horizon scales Rate and bounds the pull (required for never-ending
// generator cursors); pass <= 0 to drain a finite cursor and use the latest
// observed arrival time.
func AnalyzeArrivals(c workload.ArrivalCursor, horizon float64) ([]TraceStats, error) {
	return workload.AnalyzeArrivals(c, horizon)
}

// AnalyzeTraceCSV streams a trace CSV through AnalyzeArrivals — the
// constant-memory replacement for reading the file and calling AnalyzeTrace.
func AnalyzeTraceCSV(r io.Reader) ([]TraceStats, error) { return workload.AnalyzeTraceCSV(r) }

// ReadProblemJSON parses and validates a problem written with
// Problem.WriteJSON (or cmd/tracegen).
func ReadProblemJSON(r io.Reader) (*Problem, error) { return model.ReadJSON(r) }

// ReadSolutionJSON parses and validates a solution written with
// Solution.WriteJSON (or nfvsim -out).
func ReadSolutionJSON(r io.Reader) (*Solution, error) { return core.ReadSolutionJSON(r) }

// Experiments.

// RunExperiment regenerates one of the paper's evaluation figures
// ("fig5" … "fig16", "tail"); see ExperimentIDs.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentTable, error) {
	return experiment.Run(id, cfg)
}

// ExperimentIDs lists the available experiments.
func ExperimentIDs() []string { return experiment.IDs() }

// DefaultExperimentConfig mirrors the paper's averaging protocol (1000
// scheduling trials per point).
func DefaultExperimentConfig() ExperimentConfig { return experiment.DefaultConfig() }

// FastExperimentConfig trades averaging depth for speed.
func FastExperimentConfig() ExperimentConfig { return experiment.FastConfig() }
