// Tradeoff: the paper's "coordination of Objective 1 and Objective 2"
// (Section III-C) made visible. Consolidating placements minimize the link
// term of Eq. 16 but concentrate load; spreading placements do the
// opposite. Sweeping the inter-node latency L shows where each placement
// philosophy wins, and why the paper couples placement with scheduling
// instead of treating them separately.
package main

import (
	"fmt"
	"os"

	nfvchain "nfvchain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tradeoff:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := nfvchain.DefaultWorkloadConfig()
	cfg.Seed = 21
	cfg.NumVNFs = 12
	cfg.NumRequests = 150
	cfg.NumNodes = 8
	problem, err := nfvchain.GenerateWorkload(cfg)
	if err != nil {
		return err
	}
	// ~70% fleet load so both consolidation and spreading are feasible.
	scale := 0.7 * problem.TotalCapacity() / problem.TotalDemand()
	for i := range problem.VNFs {
		problem.VNFs[i].Demand *= scale
	}

	placers := []nfvchain.PlacementAlgorithm{
		nfvchain.NewBFDSU(21), // consolidates (Objective 1)
		nfvchain.NewWFD(),     // spreads
	}

	fmt.Printf("%-10s %-8s %8s %10s %14s %14s\n",
		"L (s)", "placer", "nodes", "util", "queueing(s)", "total Eq16(s)")
	for _, linkDelay := range []float64{0, 0.0005, 0.002, 0.01, 0.05} {
		for _, placer := range placers {
			sol, err := nfvchain.Optimize(problem, nfvchain.Options{
				Placer:    placer,
				LinkDelay: linkDelay,
			})
			if err != nil {
				return err
			}
			eval, err := nfvchain.Evaluate(sol)
			if err != nil {
				return err
			}
			fmt.Printf("%-10.4f %-8s %8d %9.1f%% %14.6f %14.6f\n",
				linkDelay, placer.Name(), eval.NodesInService,
				eval.AvgUtilization*100, eval.AvgResponseTime,
				eval.MeanRequestLatency())
		}
	}
	fmt.Println("\nAs L grows, the consolidating placement's advantage in the")
	fmt.Println("Eq. 16 total widens: every extra node a chain spans costs L.")
	return nil
}
