// Autoscale: drive the online controller through a diurnal load pattern.
// Requests arrive and depart over a simulated day; saturated VNFs scale out
// by booting replicas (paying the setup cost the paper highlights — ~5s for
// a middlebox VM vs ~30ms for a ClickOS-style platform), and idle replicas
// are retired as load recedes.
package main

import (
	"fmt"
	"math"
	"os"

	nfvchain "nfvchain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale:", err)
		os.Exit(1)
	}
}

func run() error {
	base := &nfvchain.Problem{
		Nodes: []nfvchain.Node{
			{ID: "n1", Capacity: 400},
			{ID: "n2", Capacity: 400},
			{ID: "n3", Capacity: 400},
		},
		VNFs: []nfvchain.VNF{
			{ID: "Firewall", Instances: 2, Demand: 40, ServiceRate: 300},
			{ID: "NAT", Instances: 1, Demand: 30, ServiceRate: 400},
		},
	}

	for _, platform := range []struct {
		name  string
		setup float64
	}{
		{"middlebox VM (5s boot)", nfvchain.SetupCostVM},
		{"ClickOS (30ms boot)", nfvchain.SetupCostClickOS},
	} {
		ctrl, err := nfvchain.NewDynamicController(nfvchain.DynamicConfig{
			Problem:      base,
			Seed:         1,
			SetupCost:    platform.setup,
			RetireLinger: 600, // retire replicas idle for 10 minutes
		})
		if err != nil {
			return err
		}

		// 24 hours in 10-minute steps; load peaks mid-day. Each flow lives
		// for 30 minutes, so the fleet sees continuous churn.
		const (
			day      = 24 * 3600.0
			step     = 600.0
			lifetime = 1800.0
		)
		type liveFlow struct {
			id     nfvchain.RequestID
			expiry float64
		}
		var active []liveFlow
		reqNo := 0
		var worstWait float64
		for now := 0.0; now < day; now += step {
			// Depart expired flows.
			keep := active[:0]
			for _, f := range active {
				if f.expiry <= now {
					if err := ctrl.Depart(f.id, now); err != nil {
						return err
					}
				} else {
					keep = append(keep, f)
				}
			}
			active = keep

			hour := now / 3600
			// Diurnal target: 2 concurrent flows at night, 14 at the peak.
			target := 2 + int(12*math.Pow(math.Sin(math.Pi*hour/24), 2))
			for len(active) < target {
				reqNo++
				id := nfvchain.RequestID(fmt.Sprintf("flow%04d", reqNo))
				out, err := ctrl.Admit(nfvchain.Request{
					ID:           id,
					Chain:        []nfvchain.VNFID{"Firewall", "NAT"},
					Rate:         30,
					DeliveryProb: 0.98,
				}, now)
				if err != nil {
					return err
				}
				if !out.Accepted {
					break // fleet exhausted at this step
				}
				active = append(active, liveFlow{id: id, expiry: now + lifetime})
				if wait := out.ReadyAt - now; wait > worstWait {
					worstWait = wait
				}
			}
			if _, err := ctrl.MaybeScaleIn(now); err != nil {
				return err
			}
		}

		st := ctrl.Stats()
		fmt.Printf("%s:\n", platform.name)
		fmt.Printf("  admitted %d, rejected %d, scale-outs %d, retired %d\n",
			st.Admitted, st.Rejected, st.ScaleOuts, st.Retired)
		fmt.Printf("  setup time paid %.2fs total, worst admission wait %.3fs\n",
			st.SetupSecs, worstWait)
		fmt.Printf("  replicas still active at midnight: %d\n\n", st.ActiveReplica)
	}
	return nil
}
