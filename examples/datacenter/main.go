// Datacenter placement: build a fat-tree datacenter, derive computing nodes
// from its topology, and compare all placement algorithms on the paper's
// Objective 1 metrics (average utilization of nodes in service, nodes in
// service, resource occupation) for the same workload.
package main

import (
	"fmt"
	"os"

	nfvchain "nfvchain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datacenter:", err)
		os.Exit(1)
	}
}

func run() error {
	// A k=4 fat-tree has 16 hosts across 4 pods behind 20 switches.
	dc, err := nfvchain.NewFatTree(4)
	if err != nil {
		return err
	}
	fmt.Printf("fat-tree: %d computing nodes, %d switches, diameter %d hops\n",
		len(dc.ComputeVertices()), dc.NumVertices()-len(dc.ComputeVertices()), dc.Diameter())

	// Heterogeneous server tiers: capacities cycle through 2000–5000 units
	// (one unit = 64-byte packets at 10 kpps; 150 units ≈ one CPU core).
	nodes := dc.ComputeNodes(func(i int, id string) float64 {
		return float64(2000 + (i%4)*1000)
	})

	// A workload over the full 30-VNF catalog.
	cfg := nfvchain.DefaultWorkloadConfig()
	cfg.Seed = 7
	cfg.NumVNFs = 30
	cfg.NumRequests = 500
	cfg.NumNodes = len(nodes)
	problem, err := nfvchain.GenerateWorkload(cfg)
	if err != nil {
		return err
	}
	problem.Nodes = nodes // adopt the fat-tree's node pool
	// Size demand to ~65% of the fleet so packing quality matters.
	scale := 0.65 * problem.TotalCapacity() / problem.TotalDemand()
	for i := range problem.VNFs {
		problem.VNFs[i].Demand *= scale
	}

	// The average inter-node path delay calibrates Eq. 16's constant L.
	linkDelay := dc.AveragePairDelay() * 0.0001 // delays in units of 100µs per hop
	fmt.Printf("link latency L = %.4fs (from average pair delay)\n\n", linkDelay)

	algorithms := []nfvchain.PlacementAlgorithm{
		nfvchain.NewBFDSU(7),
		nfvchain.NewFFD(),
		nfvchain.NewBFD(),
		nfvchain.NewWFD(),
		nfvchain.NewNAH(),
	}
	fmt.Printf("%-8s %12s %10s %12s %12s %12s\n",
		"placer", "utilization", "nodes", "occupation", "iterations", "latency(s)")
	for _, alg := range algorithms {
		sol, err := nfvchain.Optimize(problem, nfvchain.Options{
			Placer:    alg,
			LinkDelay: linkDelay,
		})
		if err != nil {
			fmt.Printf("%-8s infeasible: %v\n", alg.Name(), err)
			continue
		}
		eval, err := nfvchain.Evaluate(sol)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %11.1f%% %10d %12.0f %12d %12.5f\n",
			alg.Name(), eval.AvgUtilization*100, eval.NodesInService,
			eval.ResourceOccupation, sol.PlacementIterations, eval.MeanRequestLatency())
	}
	return nil
}
