// Scheduler comparison: fifty requests share one VNF with five service
// instances — the paper's Fig. 11 setting. Compare how RCKK and CGA balance
// the per-instance arrival rates, what that does to the M/M/1 response
// times, and how admission control reacts when the system is pushed past
// saturation.
package main

import (
	"fmt"
	"math/rand"
	"os"

	nfvchain "nfvchain"
)

const (
	numRequests  = 50
	numInstances = 5
	deliveryProb = 0.98
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scheduler:", err)
		os.Exit(1)
	}
}

func buildProblem(mu float64) *nfvchain.Problem {
	p := &nfvchain.Problem{
		Nodes: []nfvchain.Node{{ID: "server0", Capacity: 5000}},
		VNFs: []nfvchain.VNF{{
			ID: "Firewall", Instances: numInstances, Demand: 100, ServiceRate: mu,
		}},
	}
	// Deterministic rate draws in [1,100] pps.
	rnd := rand.New(rand.NewSource(4))
	for i := 0; i < numRequests; i++ {
		p.Requests = append(p.Requests, nfvchain.Request{
			ID:           nfvchain.RequestID(fmt.Sprintf("flow%02d", i)),
			Chain:        []nfvchain.VNFID{"Firewall"},
			Rate:         1 + 99*rnd.Float64(),
			DeliveryProb: deliveryProb,
		})
	}
	return p
}

func run() error {
	// First, a well-provisioned system: µ sized for ~85% utilization.
	base := buildProblem(1)
	var total float64
	for _, r := range base.Requests {
		total += r.EffectiveRate()
	}
	mu := total / numInstances / 0.85
	problem := buildProblem(mu)

	fmt.Printf("%d requests (Σλ/P = %.0f pps) over %d instances at µ = %.0f pps\n\n",
		numRequests, total, numInstances, mu)

	for _, alg := range []nfvchain.SchedulingAlgorithm{
		nfvchain.NewRCKK(), nfvchain.NewCGA(),
	} {
		sol, err := nfvchain.Optimize(problem, nfvchain.Options{Scheduler: alg})
		if err != nil {
			return err
		}
		eval, err := nfvchain.Evaluate(sol)
		if err != nil {
			return err
		}
		loads := sol.Schedule.InstanceLoads(problem, "Firewall")
		fmt.Printf("%-6s instance loads:", alg.Name())
		minL, maxL := loads[0], loads[0]
		for _, l := range loads {
			fmt.Printf(" %7.1f", l)
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		fmt.Printf("  spread %.1f, mean W %.5fs\n", maxL-minL, eval.AvgResponseTime)
	}

	// Optimality check on a branch-and-bound-sized instance: 16 requests,
	// small enough for the exact partitioner.
	fmt.Println("\n--- optimality gap on 16 requests ---")
	small := buildProblem(mu)
	small.Requests = small.Requests[:16]
	for _, alg := range []nfvchain.SchedulingAlgorithm{
		nfvchain.NewRCKK(), nfvchain.NewCGA(), nfvchain.NewExactScheduler(),
	} {
		sol, err := nfvchain.Optimize(small, nfvchain.Options{Scheduler: alg})
		if err != nil {
			return err
		}
		loads := sol.Schedule.InstanceLoads(small, "Firewall")
		minL, maxL := loads[0], loads[0]
		for _, l := range loads {
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		fmt.Printf("%-6s max load %.1f, spread %.1f\n", alg.Name(), maxL, maxL-minL)
	}

	// Now push past saturation: shrink µ so the aggregate load exceeds
	// capacity and admission control must shed jobs.
	fmt.Println("\n--- overload: µ reduced 20% ---")
	overloaded := buildProblem(mu * 0.8)
	for _, alg := range []nfvchain.SchedulingAlgorithm{nfvchain.NewRCKK(), nfvchain.NewCGA()} {
		sol, err := nfvchain.Optimize(overloaded, nfvchain.Options{Scheduler: alg})
		if err != nil {
			return err
		}
		fmt.Printf("%-6s rejected %d/%d requests (%.1f%% job rejection rate)\n",
			alg.Name(), len(sol.Rejected), numRequests, sol.RejectionRate*100)
	}
	return nil
}
