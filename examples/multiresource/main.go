// Multi-resource placement: the paper treats CPU as the bottleneck and
// models memory and bandwidth "as additional constraints" (Section III-A).
// This example annotates a workload with a memory dimension and shows how
// the same packing algorithms respect it: memory-tight nodes force chains
// apart even when CPU alone would pack everything together.
package main

import (
	"fmt"
	"os"

	nfvchain "nfvchain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multiresource:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := nfvchain.DefaultWorkloadConfig()
	cfg.Seed = 5
	cfg.NumVNFs = 12
	cfg.NumRequests = 120
	cfg.NumNodes = 8
	problem, err := nfvchain.GenerateWorkload(cfg)
	if err != nil {
		return err
	}
	// CPU-loose: everything would fit on ~2 nodes by CPU alone.
	scale := 0.25 * problem.TotalCapacity() / problem.TotalDemand()
	for i := range problem.VNFs {
		problem.VNFs[i].Demand *= scale
	}

	solve := func(p *nfvchain.Problem, label string) error {
		sol, err := nfvchain.Optimize(p, nfvchain.Options{Seed: 5})
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		eval, err := nfvchain.Evaluate(sol)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %d nodes in service, CPU utilization %.1f%%\n",
			label, eval.NodesInService, eval.AvgUtilization*100)
		return nil
	}

	if err := solve(problem, "CPU only:"); err != nil {
		return err
	}

	// Add the memory dimension: node tiers 64–512 GB, per-instance demands
	// proportional to CPU weight.
	withMem := problem.Clone()
	if err := nfvchain.AddMemoryDimension(withMem, 5); err != nil {
		return err
	}
	fmt.Printf("\nmemory dimension added — node capacities (GB):")
	for _, n := range withMem.Nodes {
		fmt.Printf(" %.0f", n.Extras[0])
	}
	fmt.Println()
	var memDemand float64
	for _, f := range withMem.VNFs {
		memDemand += f.TotalExtras()[0]
	}
	fmt.Printf("total VNF memory demand: %.0f GB\n\n", memDemand)

	if err := solve(withMem, "CPU + memory:"); err != nil {
		return err
	}

	// Tighten memory until packing is genuinely memory-bound.
	tight := withMem.Clone()
	for i := range tight.Nodes {
		tight.Nodes[i].Extras[0] = 64 // every node on the smallest tier
	}
	if err := solve(tight, "CPU + tight memory:"); err != nil {
		return err
	}
	fmt.Println("\nMemory never appears in the objective — only as a constraint —")
	fmt.Println("so utilization stays CPU-defined while node counts grow.")
	return nil
}
