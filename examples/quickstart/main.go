// Quickstart: generate a paper-scale workload, run the joint optimizer
// (BFDSU placement + RCKK scheduling), and print the objective values.
package main

import (
	"fmt"
	"os"

	nfvchain "nfvchain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A workload following the paper's Section V-A setup: 15 VNFs, 200
	// requests with chains of up to 6 VNFs, 10 computing nodes, arrival
	// rates of 1–100 packets/s and 2% packet loss.
	cfg := nfvchain.DefaultWorkloadConfig()
	cfg.Seed = 42
	problem, err := nfvchain.GenerateWorkload(cfg)
	if err != nil {
		return err
	}
	// Size VNF demand to ~60% of the fleet so packing quality is visible.
	scale := 0.6 * problem.TotalCapacity() / problem.TotalDemand()
	for i := range problem.VNFs {
		problem.VNFs[i].Demand *= scale
	}

	// Phase one places every VNF's instance bundle on a node; phase two
	// balances each VNF's requests across its service instances; admission
	// control rejects whatever would overload an instance.
	sol, err := nfvchain.Optimize(problem, nfvchain.Options{Seed: 42, LinkDelay: 0.0005})
	if err != nil {
		return err
	}

	eval, err := nfvchain.Evaluate(sol)
	if err != nil {
		return err
	}

	fmt.Printf("placed %d VNFs on %d/%d nodes — average utilization %.1f%%\n",
		len(problem.VNFs), eval.NodesInService, len(problem.Nodes), eval.AvgUtilization*100)
	fmt.Printf("scheduled %d requests — mean instance response time %.4fs\n",
		len(problem.Requests)-len(sol.Rejected), eval.AvgResponseTime)
	fmt.Printf("rejected %d requests (%.2f%%)\n", len(sol.Rejected), sol.RejectionRate*100)
	fmt.Printf("mean end-to-end request latency (Eq. 16): %.4fs\n", eval.MeanRequestLatency())

	// Each VNF's mean response time, from the open-Jackson-network model.
	for _, f := range problem.VNFs[:5] {
		fmt.Printf("  %-16s W = %.5fs over %d instances\n",
			f.ID, eval.PerVNFResponse[f.ID], f.Instances)
	}
	return nil
}
