// Service: embed the nfvd serving engine in-process, then drive it through
// the Go client — submit a solve, simulate the solved chain placement, watch
// a duplicate submission come back from the result cache, and read the
// daemon's metrics. The same client speaks to a standalone `nfvd` daemon;
// only the base URL changes.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	nfvchain "nfvchain"
	"nfvchain/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "service:", err)
		os.Exit(1)
	}
}

func run() error {
	// A small paper-style workload (Section V-A shape, scaled down).
	cfg := nfvchain.DefaultWorkloadConfig()
	cfg.Seed = 42
	cfg.NumVNFs = 6
	cfg.NumRequests = 40
	cfg.NumNodes = 4
	problem, err := nfvchain.GenerateWorkload(cfg)
	if err != nil {
		return err
	}

	// Boot the serving engine on a random local port. `nfvd` wraps exactly
	// this server; embedding it keeps the example self-contained.
	srv := service.New(service.Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		_ = srv.Shutdown(ctx)
	}()

	ctx := context.Background()
	c := service.NewClient("http://" + ln.Addr().String())
	if err := c.Healthy(ctx); err != nil {
		return err
	}
	fmt.Printf("serving on %s\n", c.BaseURL)

	// Solve: place the chains and schedule the requests.
	solve := service.SolveRequest{
		Problem: problem,
		Options: service.SolveOptions{Seed: 42, LinkDelay: 0.0005},
	}
	st, err := c.Solve(ctx, solve)
	if err != nil {
		return err
	}
	if st, err = c.Wait(ctx, st.ID); err != nil {
		return err
	}
	sol, err := c.SolveResult(ctx, st.ID)
	if err != nil {
		return err
	}
	fmt.Printf("solve %s: %s — rejected %.2f%% of requests\n", st.ID, st.State, sol.RejectionRate*100)

	// Simulate the same problem end to end (solve + discrete-event run).
	sim, err := c.Simulate(ctx, service.SimulateRequest{
		Problem: problem,
		Options: solve.Options,
		Sim:     service.SimOptions{Horizon: 50, Warmup: 5, Seed: 7},
	})
	if err != nil {
		return err
	}
	if sim, err = c.Wait(ctx, sim.ID); err != nil {
		return err
	}
	res, err := c.SimulateResult(ctx, sim.ID)
	if err != nil {
		return err
	}
	fmt.Printf("simulate %s: %s — %d packets delivered, mean latency %.4fs\n",
		sim.ID, sim.State, res.Delivered, res.Latency.Mean())

	// An identical submission is answered from the content-addressed cache.
	dup, err := c.Solve(ctx, solve)
	if err != nil {
		return err
	}
	fmt.Printf("duplicate solve %s: state %s, cache hit: %v\n", dup.ID, dup.State, dup.CacheHit)

	m, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("metrics: %d/%d queue, %d workers, cache %d hit / %d miss\n",
		m.QueueDepth, m.QueueCapacity, m.Workers, m.Cache.Hits, m.Cache.Misses)
	return nil
}
