// Model validation: run the joint optimizer, predict per-request latency
// analytically from the open Jackson network (Eq. 16), then replay the same
// system in the packet-level discrete-event simulator — first with live
// Poisson arrivals, then trace-driven — and compare the two.
package main

import (
	"fmt"
	"math"
	"os"
	"sort"

	nfvchain "nfvchain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulation:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := nfvchain.DefaultWorkloadConfig()
	cfg.Seed = 11
	cfg.NumRequests = 60
	cfg.NumVNFs = 10
	problem, err := nfvchain.GenerateWorkload(cfg)
	if err != nil {
		return err
	}

	sol, err := nfvchain.Optimize(problem, nfvchain.Options{Seed: 11, LinkDelay: 0.0002})
	if err != nil {
		return err
	}
	eval, err := nfvchain.Evaluate(sol)
	if err != nil {
		return err
	}

	fmt.Println("running discrete-event simulation (300s, 30s warmup)…")
	res, err := nfvchain.Simulate(sol, nfvchain.SimulationConfig{
		Horizon: 300, Warmup: 30, Seed: 11,
	})
	if err != nil {
		return err
	}
	fmt.Printf("delivered %d packets, %d retransmissions (loss feedback)\n\n",
		res.Delivered, res.Retransmissions)

	// Per-request: analytic Eq. 16 vs measured mean sojourn.
	ids := make([]nfvchain.RequestID, 0, len(eval.PerRequestLatency))
	for id := range eval.PerRequestLatency {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	fmt.Printf("%-10s %12s %12s %8s\n", "request", "analytic(s)", "simulated(s)", "error")
	var worst float64
	shown := 0
	for _, id := range ids {
		analytic := eval.PerRequestLatency[id]
		summary, ok := res.PerRequest[id]
		if !ok || summary.N() == 0 {
			continue
		}
		sim := summary.Mean()
		errPct := math.Abs(sim-analytic) / analytic * 100
		if errPct > worst {
			worst = errPct
		}
		if shown < 10 {
			fmt.Printf("%-10s %12.5f %12.5f %7.1f%%\n", id, analytic, sim, errPct)
			shown++
		}
	}
	fmt.Printf("… (%d requests total), worst per-request error %.1f%%\n\n", len(ids), worst)

	// Trace-driven replay: identical arrivals, reproducible end to end.
	trace, err := nfvchain.GenerateTrace(problem, 60, 99)
	if err != nil {
		return err
	}
	replay1, err := nfvchain.Simulate(sol, nfvchain.SimulationConfig{
		Horizon: 60, Warmup: 5, Trace: trace, Seed: 99,
	})
	if err != nil {
		return err
	}
	replay2, err := nfvchain.Simulate(sol, nfvchain.SimulationConfig{
		Horizon: 60, Warmup: 5, Trace: trace, Seed: 99,
	})
	if err != nil {
		return err
	}
	fmt.Printf("trace replay: %d arrivals → %d delivered (replayed twice: %v)\n",
		trace.Len(), replay1.Delivered, replay1.Delivered == replay2.Delivered)
	return nil
}
