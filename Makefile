# Developer entry points. `make check` is the PR gate: it must pass before
# every commit (the race detector covers the parallel experiment harness).

GO ?= go

.PHONY: check build vet lint test race bench bench-json serve-smoke profile clean

check: build vet race

# Static analysis beyond vet. staticcheck and govulncheck are optional local
# tools (CI installs pinned versions); skip with a hint when absent so the
# target works on a bare toolchain.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick micro-benchmarks of the two hot paths (DES event loop, RCKK merge).
bench:
	$(GO) test -run xxx -bench 'BenchmarkSimulator|BenchmarkScheduleRCKK' -benchmem .

# Regenerate the committed performance trajectory (ns/op, allocs/op per
# scenario). Compare against the previous results/BENCH.json before merging
# performance-sensitive changes.
bench-json:
	$(GO) run ./cmd/nfvbench -out results/BENCH.json

# End-to-end smoke test of the serving daemon: boot nfvd on a random port,
# curl /healthz, run a tiny /v1/solve round-trip, and shut down gracefully.
serve-smoke:
	sh scripts/serve_smoke.sh

# Profile the hottest scenario and print the top CPU consumers. Leaves
# cpu.prof/mem.prof behind for `go tool pprof -http` flame graphs; see the
# profiling workflow in EXPERIMENTS.md.
profile:
	$(GO) run ./cmd/nfvbench -run Simulator/large-horizon -out /dev/null \
		-cpuprofile cpu.prof -memprofile mem.prof
	$(GO) tool pprof -top -nodecount 15 cpu.prof

clean:
	$(GO) clean ./...
