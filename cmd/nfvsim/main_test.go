package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	nfvchain "nfvchain"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-op invocation should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99", "-fast"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunFigureWithCSVAndPlot(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-fig", "fig12", "-placement-trials", "1", "-scheduling-trials", "4",
		"-csv", dir, "-plot",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig12.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,RCKK,CGA") {
		t.Errorf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunDemo(t *testing.T) {
	if err := run([]string{"-demo", "-requests", "40", "-vnfs", "8", "-nodes", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemoAlgorithmSelection(t *testing.T) {
	if err := run([]string{"-demo", "-requests", "30", "-placer", "nah", "-scheduler", "cga"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-demo", "-requests", "30", "-placer", "wfd", "-improve"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-demo", "-placer", "nope"}); err == nil {
		t.Error("unknown placer accepted")
	}
	if err := run([]string{"-demo", "-scheduler", "nope"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestRunDemoAgendaSelection(t *testing.T) {
	base := []string{"-demo", "-simulate", "-requests", "20", "-vnfs", "6", "-nodes", "4"}
	for _, kind := range []string{"auto", "heap", "ladder"} {
		if err := run(append(base, "-agenda", kind)); err != nil {
			t.Errorf("agenda %s: %v", kind, err)
		}
	}
	err := run(append(base, "-agenda", "calendar"))
	if err == nil {
		t.Fatal("unknown agenda kind accepted")
	}
	for _, want := range []string{"calendar", "auto|heap|ladder"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("agenda error %q missing %q", err, want)
		}
	}
}

// TestRunDemoSimulateJSON pins -json to emitting exactly the daemon's
// Results wire format on stdout: parseable by ReadResultsJSON and free of
// the human report lines.
func TestRunDemoSimulateJSON(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-demo", "-simulate", "-json", "-requests", "20", "-vnfs", "6", "-nodes", "4"}
	if err := runTo(args, &buf); err != nil {
		t.Fatal(err)
	}
	res, err := nfvchain.ReadResultsJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("stdout is not a Results document: %v\n%s", err, buf.String())
	}
	if res.Delivered == 0 || res.Horizon != 60 {
		t.Errorf("implausible simulation results: delivered=%d horizon=%v", res.Delivered, res.Horizon)
	}
	if strings.Contains(buf.String(), "workload:") {
		t.Error("human report leaked onto stdout in -json mode")
	}
}

// TestRunJSONRequiresSimulate pins the flag dependency.
func TestRunJSONRequiresSimulate(t *testing.T) {
	err := run([]string{"-demo", "-json", "-requests", "20"})
	if err == nil || !strings.Contains(err.Error(), "-simulate") {
		t.Errorf("got %v, want an error demanding -simulate", err)
	}
}

func TestChooseAlgorithms(t *testing.T) {
	placers := []string{"bfdsu", "ffd", "bfd", "wfd", "nah", "exact"}
	schedulers := []string{"rckk", "cga", "ckk", "roundrobin", "exact"}
	for _, p := range placers {
		algs, err := chooseAlgorithms(p, "rckk", 1)
		if err != nil || algs.placer == nil {
			t.Errorf("placer %s: %v", p, err)
		}
	}
	for _, s := range schedulers {
		algs, err := chooseAlgorithms("bfdsu", s, 1)
		if err != nil || algs.scheduler == nil {
			t.Errorf("scheduler %s: %v", s, err)
		}
	}
}

func TestRunDemoWritesSolution(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sol.json")
	if err := run([]string{"-demo", "-requests", "20", "-vnfs", "6", "-nodes", "4", "-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"placement"`, `"schedule"`, `"problem"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("solution file missing %s", want)
		}
	}
}

func TestRunSolve(t *testing.T) {
	// Generate a problem file with the library, then solve it.
	const problemJSON = `{
  "nodes": [{"id": "n1", "capacity": 1000}],
  "vnfs": [{"id": "fw", "instances": 1, "demand": 10, "serviceRate": 500}],
  "requests": [{"id": "r1", "chain": ["fw"], "rate": 50, "deliveryProb": 0.98}]
}`
	path := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(path, []byte(problemJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-solve", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-solve", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing problem file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-solve", bad}); err == nil {
		t.Error("malformed problem accepted")
	}
}

func TestRunDemoPortfolio(t *testing.T) {
	var buf bytes.Buffer
	err := runTo([]string{
		"-demo", "-requests", "40", "-vnfs", "8", "-nodes", "6",
		"-solver", "portfolio:greedy,sa:iters=2000,lns:iters=40",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"racing portfolio", "incumbent", "race: winner", "placement (portfolio)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDemoPortfolioDeadline(t *testing.T) {
	var buf bytes.Buffer
	// Unbounded SA: only the deadline ends the race, best-so-far returned.
	err := runTo([]string{
		"-demo", "-requests", "30", "-vnfs", "6", "-nodes", "5",
		"-solver", "portfolio:greedy,sa:iters=0;cooling=0.999999", "-deadline-ms", "300",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deadline expired, best-so-far returned") {
		t.Errorf("deadline race did not report best-so-far:\n%s", buf.String())
	}
}

func TestRunPortfolioFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-demo", "-solver", "warp-drive"},                      // unknown solver mode
		{"-demo", "-solver", "portfolio:nope"},                  // unknown portfolio member
		{"-demo", "-solver", "portfolio:sa:t0=NaN"},             // bad parameter
		{"-demo", "-solver", "portfolio", "-deadline-ms", "-1"}, // negative deadline
		{"-demo", "-deadline-ms", "100"},                        // deadline without portfolio
		{"-demo", "-solver", "portfolio", "-improve"},           // redundant polish
		{"-demo", "-solver", "portfolio", "-datacenters", "2"},  // not wired into cluster mode
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("accepted %v", args)
		}
	}
}
