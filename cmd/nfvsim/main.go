// Command nfvsim runs the nfvchain pipeline and regenerates the evaluation
// figures of the ICDCS'17 paper "Joint Optimization of Chain Placement and
// Request Scheduling for Network Function Virtualization".
//
// Usage:
//
//	nfvsim -list                       # list available experiments
//	nfvsim -fig fig5                   # regenerate one figure
//	nfvsim -fig all -fast              # all figures with reduced averaging
//	nfvsim -fig fig11 -csv out/        # also write CSV series
//	nfvsim -demo                       # run the pipeline on one workload
//	nfvsim -demo -simulate             # … and validate with the simulator
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nfvchain/internal/experiment"
	"nfvchain/internal/model"
	"nfvchain/internal/profiling"
	"nfvchain/internal/stats"

	nfvchain "nfvchain"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nfvsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	return runTo(args, os.Stdout)
}

// runTo is run with an explicit stdout, so tests can capture machine-readable
// output (-json) without redirecting the process's file descriptors.
func runTo(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("nfvsim", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list available experiments and exit")
		fig        = fs.String("fig", "", `experiment to run ("fig5"…"fig16", "tail", or "all")`)
		fast       = fs.Bool("fast", false, "reduced averaging (quick, noisier curves)")
		seed       = fs.Uint64("seed", 1, "random seed")
		placeTr    = fs.Int("placement-trials", 0, "override placement trials per point")
		schedTr    = fs.Int("scheduling-trials", 0, "override scheduling trials per point")
		csvDir     = fs.String("csv", "", "directory to write per-figure CSV files")
		plot       = fs.Bool("plot", false, "render each figure as an ASCII chart instead of a table")
		demo       = fs.Bool("demo", false, "run the joint pipeline on a generated workload")
		solve      = fs.String("solve", "", "run the joint pipeline on a problem JSON file (see cmd/tracegen)")
		solOut     = fs.String("out", "", "with -demo/-solve: write the solution (problem+placement+schedule) as JSON")
		simulateIt = fs.Bool("simulate", false, "with -demo: also run the discrete-event simulator")
		jsonOut    = fs.Bool("json", false, "with -simulate: write the simulation Results JSON to stdout (the nfvd wire format) instead of the text report; progress goes to stderr")
		agendaStr  = fs.String("agenda", "auto", "with -simulate: event-queue backend: auto|heap|ladder (results are bit-identical under every choice)")
		placer     = fs.String("placer", "bfdsu", "placement algorithm: bfdsu|ffd|bfd|wfd|nah|exact")
		scheduler  = fs.String("scheduler", "rckk", "scheduling algorithm: rckk|cga|ckk|roundrobin|exact")
		solver     = fs.String("solver", "", `with -demo/-solve: race a solver portfolio instead of one placer+scheduler pair: "portfolio" (default lineup) or "portfolio:spec,spec,..." — e.g. "portfolio:greedy,sa:iters=20000;t0=2.0,lns" (commas separate specs, semicolons separate a spec's parameters)`)
		deadline   = fs.Int("deadline-ms", 0, "with -solver portfolio: wall-clock deadline in milliseconds; the race returns its best-so-far incumbent when it expires (0 = run every solver to its iteration budget)")
		improve    = fs.Bool("improve", false, "polish placement and schedule with local search")
		requests   = fs.Int("requests", 200, "with -demo: number of requests")
		vnfs       = fs.Int("vnfs", 15, "with -demo: number of VNFs")
		nodes      = fs.Int("nodes", 10, "with -demo: number of nodes")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file on exit")
		mutexProf  = fs.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blockProf  = fs.String("blockprofile", "", "write a blocking profile to this file on exit")

		datacenters = fs.Int("datacenters", 1, "with -demo: partition the workload across N datacenters and co-simulate them under one global clock")
		wanLatency  = fs.Float64("wan-latency", 0.005, "with -datacenters: inter-datacenter entry-hop latency in seconds")
		routeStr    = fs.String("route", "locality", "with -datacenters: cross-datacenter routing policy: locality|least-loaded|weighted")
		globalFrac  = fs.Float64("global-fraction", 0.25, "with -datacenters: fraction of requests promoted to cluster-level flows routed across datacenters")
		clusterWork = fs.Int("cluster-workers", 0, "with -datacenters: cluster execution driver: 0 = sequential event interleaving, >= 1 = conservative-window driver draining datacenters between routing barriers (in parallel on that many goroutines when > 1); results are bit-identical")

		workloadStr = fs.String("workload", "flat", "with -simulate: arrival workload: flat (homogeneous Poisson), classes (heterogeneous client classes: steady/diurnal/bursty), trace-stream (constant-memory CSV replay via -trace-file)")
		traceFile   = fs.String("trace-file", "", "with -workload trace-stream: trace CSV to replay (as written by cmd/tracegen)")

		mtbf       = fs.Float64("mtbf", 0, "with -simulate: mean time between node failures in seconds (0 disables fault injection)")
		mttr       = fs.Float64("mttr", 5, "with -simulate -mtbf: mean time to repair a failed node in seconds")
		failPolicy = fs.String("failurepolicy", "drop", "with -simulate -mtbf: fate of packets on failed nodes: drop|retransmit")
		repairMode = fs.String("repair", "none", "with -simulate -mtbf: self-healing mode: none|reschedule|replace")
		retrDelay  = fs.Float64("retransmit-delay", 0.005, "NACK round-trip before a dropped/failed packet is re-injected (seconds)")

		controlStr   = fs.String("control", "none", "with -simulate: online control plane policy: none|repair|autoscale|autoscale+migrate (subsumes -repair)")
		controlInt   = fs.Float64("control-interval", 1, "with -control: controller tick period in simulated seconds")
		preemptInt   = fs.Float64("preempt-interval", 0, "with -simulate: mean time between correlated preemption events in seconds (0 disables preemption)")
		preemptGroup = fs.Int("preempt-group", 2, "with -preempt-interval: nodes taken down together per preemption event")
		preemptRec   = fs.Float64("preempt-recovery", 5, "with -preempt-interval: seconds until a preempted group returns to service")
		preemptLead  = fs.Float64("preempt-lead", 0, "with -preempt-interval: advance-notice window before each preemption (0 disables notices)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut && !*simulateIt {
		return fmt.Errorf("-json requires -simulate (it emits the simulation Results document)")
	}
	wl := workloadOptions{mode: *workloadStr, traceFile: *traceFile}
	if err := wl.validate(*simulateIt); err != nil {
		return err
	}
	out := output{stdout: stdout, json: *jsonOut}
	stopProf, err := profiling.Start(profiling.Profiles{
		CPU: *cpuProf, Mem: *memProf, Mutex: *mutexProf, Block: *blockProf,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "nfvsim:", perr)
		}
	}()

	pf, err := choosePortfolio(*solver, *deadline, *improve)
	if err != nil {
		return err
	}

	switch {
	case *list:
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return nil
	case *solve != "":
		algs, err := chooseAlgorithms(*placer, *scheduler, *seed)
		if err != nil {
			return err
		}
		faults, err := chooseFaults(*mtbf, *mttr, *failPolicy, *repairMode, *retrDelay)
		if err != nil {
			return err
		}
		ctrl, err := chooseControl(*controlStr, *controlInt, *preemptInt, *preemptGroup, *preemptRec, *preemptLead, faults)
		if err != nil {
			return err
		}
		agenda, err := nfvchain.ParseAgendaKind(*agendaStr)
		if err != nil {
			return err
		}
		return runSolve(*solve, *seed, *simulateIt, *solOut, algs, *improve, pf, faults, ctrl, agenda, wl, out)
	case *demo:
		algs, err := chooseAlgorithms(*placer, *scheduler, *seed)
		if err != nil {
			return err
		}
		faults, err := chooseFaults(*mtbf, *mttr, *failPolicy, *repairMode, *retrDelay)
		if err != nil {
			return err
		}
		ctrl, err := chooseControl(*controlStr, *controlInt, *preemptInt, *preemptGroup, *preemptRec, *preemptLead, faults)
		if err != nil {
			return err
		}
		agenda, err := nfvchain.ParseAgendaKind(*agendaStr)
		if err != nil {
			return err
		}
		if *datacenters > 1 {
			if *jsonOut {
				return fmt.Errorf("-json is not supported with -datacenters (cluster results are text-report only)")
			}
			if pf.enabled {
				return fmt.Errorf("-solver portfolio is not wired into cluster mode; drop -datacenters")
			}
			if wl.mode != "flat" {
				return fmt.Errorf("-workload %s is not wired into cluster mode from the CLI; drop -datacenters (the library supports per-flow sources via GlobalRequest.Source)", wl.mode)
			}
			if faults.mtbf > 0 {
				return fmt.Errorf("-mtbf fault injection is not wired into cluster mode; drop -datacenters or -mtbf")
			}
			if ctrl.enabled() {
				return fmt.Errorf("-control/-preempt-interval are not wired into cluster mode from the CLI; drop -datacenters (the library supports per-region hooks via ClusterSimConfig.FaultPlans/FaultHooks)")
			}
			router, err := nfvchain.NewClusterRouter(*routeStr)
			if err != nil {
				return err
			}
			if *clusterWork < 0 {
				return fmt.Errorf("-cluster-workers %d must be >= 0", *clusterWork)
			}
			cc := clusterOptions{
				datacenters: *datacenters,
				wanLatency:  *wanLatency,
				globalFrac:  *globalFrac,
				router:      router,
				workers:     *clusterWork,
			}
			return runClusterDemo(*seed, *vnfs, *requests, *nodes, *simulateIt, algs, agenda, cc, out)
		}
		return runDemo(*seed, *vnfs, *requests, *nodes, *simulateIt, *solOut, algs, *improve, pf, faults, ctrl, agenda, wl, out)
	case *fig != "":
		cfg := experiment.DefaultConfig()
		if *fast {
			cfg = experiment.FastConfig()
		}
		cfg.Seed = *seed
		if *placeTr > 0 {
			cfg.PlacementTrials = *placeTr
		}
		if *schedTr > 0 {
			cfg.SchedulingTrials = *schedTr
		}
		ids := []string{*fig}
		if *fig == "all" {
			ids = experiment.IDs()
			sort.Strings(ids)
		}
		for _, id := range ids {
			tab, err := experiment.Run(id, cfg)
			if err != nil {
				return err
			}
			if *plot {
				fmt.Println(tab.Plot(64, 16))
			} else {
				fmt.Println(tab)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, tab); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -fig or -demo")
	}
}

func writeCSV(dir string, tab *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	path := filepath.Join(dir, tab.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		_ = f.Close()
	}()
	if err := tab.WriteCSV(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Println("wrote", path)
	return nil
}

// output bundles where solveAndReport writes. In -json mode the Results
// document owns stdout and the human report moves to stderr, so the JSON can
// be piped or captured cleanly.
type output struct {
	stdout io.Writer
	json   bool
}

// report returns the destination for the human-readable lines.
func (o output) report() io.Writer {
	if o.json {
		return os.Stderr
	}
	return o.stdout
}

// faultOptions bundles the fault-injection flags; mtbf == 0 disables them.
type faultOptions struct {
	mtbf, mttr      float64
	policy          nfvchain.FailurePolicy
	repair          nfvchain.RepairMode
	retransmitDelay float64
}

func chooseFaults(mtbf, mttr float64, policy, repairMode string, retransmitDelay float64) (faultOptions, error) {
	out := faultOptions{mtbf: mtbf, mttr: mttr, retransmitDelay: retransmitDelay}
	switch policy {
	case "drop":
		out.policy = nfvchain.FailDrop
	case "retransmit":
		out.policy = nfvchain.FailRetransmit
	default:
		return out, fmt.Errorf("unknown failure policy %q (want drop|retransmit)", policy)
	}
	mode, err := nfvchain.ParseRepairMode(repairMode)
	if err != nil {
		return out, err
	}
	out.repair = mode
	return out, nil
}

// controlOptions bundles the online-control-plane flags: the -control policy
// plus the correlated-preemption knobs. policy == ControlNone and preempt ==
// nil leave the simulation exactly as before.
type controlOptions struct {
	policy   nfvchain.ControlPolicy
	interval float64
	preempt  *nfvchain.PreemptionPlan
}

// enabled reports whether any control-plane or preemption machinery is on.
func (c controlOptions) enabled() bool {
	return c.policy != nfvchain.ControlNone || c.preempt != nil
}

func chooseControl(policyStr string, interval, preemptInterval float64, group int, recovery, lead float64, faults faultOptions) (controlOptions, error) {
	out := controlOptions{interval: interval}
	policy, err := nfvchain.ParseControlPolicy(policyStr)
	if err != nil {
		return out, err
	}
	out.policy = policy
	if policy != nfvchain.ControlNone && faults.repair != nfvchain.RepairNone {
		return out, fmt.Errorf("-control %s subsumes -repair %s; drop one of them", policy, faults.repair)
	}
	if preemptInterval > 0 {
		out.preempt = &nfvchain.PreemptionPlan{
			MeanInterval: preemptInterval,
			GroupSize:    group,
			Recovery:     recovery,
			LeadTime:     lead,
		}
	}
	return out, nil
}

// workloadOptions bundles the -workload/-trace-file arrival-process flags;
// mode "flat" keeps the homogeneous-Poisson default.
type workloadOptions struct {
	mode      string
	traceFile string
}

func (w workloadOptions) validate(simulateIt bool) error {
	switch w.mode {
	case "flat", "classes", "trace-stream":
	default:
		return fmt.Errorf("unknown workload %q (want flat|classes|trace-stream)", w.mode)
	}
	if w.mode != "flat" && !simulateIt {
		return fmt.Errorf("-workload %s requires -simulate (it shapes the simulated arrival process)", w.mode)
	}
	if w.mode == "trace-stream" && w.traceFile == "" {
		return fmt.Errorf("-workload trace-stream requires -trace-file")
	}
	if w.mode != "trace-stream" && w.traceFile != "" {
		return fmt.Errorf("-trace-file requires -workload trace-stream")
	}
	return nil
}

// applyWorkload wires the -workload selection into the simulation config.
// classes installs per-request generator sources (reporting the class mix);
// trace-stream first makes a one-pass streaming analysis over the CSV —
// reporting workload-realism KPIs and learning the exact arrival count for
// the agenda-sizing hint — then attaches a fresh cursor for constant-memory
// replay. The returned cleanup closes any file the replay cursor holds open.
func applyWorkload(simCfg *nfvchain.SimulationConfig, wl workloadOptions, sol *nfvchain.Solution, seed uint64, rep io.Writer) (func(), error) {
	noop := func() {}
	switch wl.mode {
	case "classes":
		cw, err := nfvchain.BuildClassSources(sol.Problem, nfvchain.DefaultClientClasses(), seed)
		if err != nil {
			return noop, err
		}
		srcs := make(map[nfvchain.RequestID]nfvchain.ArrivalSource, len(cw.Sources))
		counts := map[string]int{}
		for id, s := range cw.Sources {
			srcs[id] = s
			counts[cw.Assignments[id].Class]++
		}
		simCfg.Sources = srcs
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(rep, "workload classes:")
		for _, name := range names {
			fmt.Fprintf(rep, " %s=%d", name, counts[name])
		}
		fmt.Fprintln(rep)
	case "trace-stream":
		// Analysis pass: one streaming read computes per-flow realism KPIs
		// and the exact arrival count, without materializing the trace.
		f, err := os.Open(wl.traceFile)
		if err != nil {
			return noop, fmt.Errorf("open %s: %w", wl.traceFile, err)
		}
		tstats, err := nfvchain.AnalyzeTraceCSV(f)
		_ = f.Close()
		if err != nil {
			return noop, err
		}
		arrivals, poissonLike := 0, 0
		var meanCV stats.Summary
		for _, st := range tstats {
			arrivals += st.Count
			if st.PoissonLike {
				poissonLike++
			}
			if st.Count >= 3 {
				meanCV.Add(st.CVGap)
			}
		}
		fmt.Fprintf(rep, "trace analysis (streaming): %d flows, %d arrivals, mean inter-arrival CV %.3f, %d/%d Poisson-like\n",
			len(tstats), arrivals, meanCV.Mean(), poissonLike, len(tstats))
		// Replay pass: a fresh cursor feeds the simulator one row at a time.
		f2, err := os.Open(wl.traceFile)
		if err != nil {
			return noop, fmt.Errorf("open %s: %w", wl.traceFile, err)
		}
		ts, err := nfvchain.NewTraceStream(f2)
		if err != nil {
			_ = f2.Close()
			return noop, err
		}
		simCfg.TraceStream = ts
		simCfg.ExpectedArrivals = arrivals
		return func() { _ = f2.Close() }, nil
	}
	return noop, nil
}

func runSolve(path string, seed uint64, simulate bool, solOut string, algs algorithms, improve bool, pf portfolioOptions, faults faultOptions, ctrl controlOptions, agenda nfvchain.AgendaKind, wl workloadOptions, out output) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer func() {
		_ = f.Close()
	}()
	p, err := model.ReadJSON(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out.report(), "problem: %d VNFs, %d requests, %d nodes (from %s)\n",
		len(p.VNFs), len(p.Requests), len(p.Nodes), path)
	return solveAndReport(p, seed, simulate, solOut, algs, improve, pf, faults, ctrl, agenda, wl, out)
}

func runDemo(seed uint64, vnfs, requests, nodes int, simulate bool, solOut string, algs algorithms, improve bool, pf portfolioOptions, faults faultOptions, ctrl controlOptions, agenda nfvchain.AgendaKind, wl workloadOptions, out output) error {
	cfg := nfvchain.DefaultWorkloadConfig()
	cfg.Seed = seed
	cfg.NumVNFs = vnfs
	cfg.NumRequests = requests
	cfg.NumNodes = nodes
	p, err := nfvchain.GenerateWorkload(cfg)
	if err != nil {
		return err
	}
	// Rescale VNF demands to fill ~60% of the fleet so placement quality is
	// visible (the generator's catalog demands are sized for single-node
	// fits at these scales).
	if total := p.TotalDemand(); total > 0 {
		scale := 0.6 * p.TotalCapacity() / total
		for i := range p.VNFs {
			p.VNFs[i].Demand *= scale
		}
	}
	fmt.Fprintf(out.report(), "workload: %d VNFs, %d requests, %d nodes (seed %d)\n",
		len(p.VNFs), len(p.Requests), len(p.Nodes), seed)
	return solveAndReport(p, seed, simulate, solOut, algs, improve, pf, faults, ctrl, agenda, wl, out)
}

// clusterOptions bundles the -datacenters/-wan-latency/-route/-global-fraction
// flags for the multi-datacenter demo path.
type clusterOptions struct {
	datacenters int
	wanLatency  float64
	globalFrac  float64
	router      nfvchain.ClusterRouter
	workers     int
}

// runClusterDemo partitions a generated workload across N datacenters, solves
// each region with the two-phase pipeline, and (with -simulate) composes the
// per-region simulators under one global clock with WAN entry-hop latency.
func runClusterDemo(seed uint64, vnfs, requests, nodes int, simulate bool, algs algorithms, agenda nfvchain.AgendaKind, cc clusterOptions, out output) error {
	rep := out.report()
	cfg := nfvchain.DefaultWorkloadConfig()
	cfg.Seed = seed
	cfg.NumVNFs = vnfs
	cfg.NumRequests = requests
	cfg.NumNodes = nodes
	p, err := nfvchain.GenerateWorkload(cfg)
	if err != nil {
		return err
	}
	// Same demand rescale as runDemo so placement quality is visible.
	if total := p.TotalDemand(); total > 0 {
		scale := 0.6 * p.TotalCapacity() / total
		for i := range p.VNFs {
			p.VNFs[i].Demand *= scale
		}
	}
	fmt.Fprintf(rep, "workload: %d VNFs, %d requests, %d nodes per region, %d datacenters (seed %d)\n",
		len(p.VNFs), len(p.Requests), len(p.Nodes), cc.datacenters, seed)
	cs, err := nfvchain.OptimizeCluster(p, nfvchain.ClusterOptions{
		Datacenters:    cc.datacenters,
		GlobalFraction: cc.globalFrac,
		Options: nfvchain.Options{
			Seed:      seed,
			LinkDelay: 0.001,
			Placer:    algs.placer,
			Scheduler: algs.scheduler,
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(rep, "cluster: %d regions, %d global flows (%.0f%% promoted), routing %s, WAN hop %.1fms\n",
		len(cs.Regions), len(cs.Global), cc.globalFrac*100, cc.router.Name(), cc.wanLatency*1e3)
	for d, sol := range cs.Regions {
		ev, err := nfvchain.Evaluate(sol)
		if err != nil {
			return err
		}
		fmt.Fprintf(rep, "  %s: %d requests, %d nodes in service, avg utilization %.2f%%, rejected %d\n",
			cs.Names[d], len(sol.Problem.Requests), ev.NodesInService, ev.AvgUtilization*100, len(sol.Rejected))
	}
	if !simulate {
		return nil
	}
	res, err := nfvchain.SimulateCluster(cs, nfvchain.ClusterSimConfig{
		Sim:        nfvchain.SimulationConfig{Horizon: 60, Warmup: 10, Seed: seed, Agenda: agenda},
		WANLatency: cc.wanLatency,
		Router:     cc.router,
		Seed:       seed,
		Workers:    cc.workers,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(rep, "simulated cluster: %d packets delivered, %d retransmitted, mean latency %.6fs, availability %.4f\n",
		res.Delivered, res.Retransmissions, res.Latency.Mean(), res.Availability)
	fmt.Fprintf(rep, "routing (%s): %d global arrivals served locally, %d WAN hops, %d rejected, %d truncated at horizon\n",
		res.Router, res.RoutedLocal, res.WANHops, res.Rejected, res.Truncated)
	for d, n := range res.RoutedByDC {
		fmt.Fprintf(rep, "  %s: %d global arrivals, %d packets delivered\n",
			res.Datacenters[d].Name, n, res.Datacenters[d].Results.Delivered)
	}
	return nil
}

// portfolioOptions bundles the -solver/-deadline-ms anytime-racing flags;
// enabled == false keeps the classic one-placer-one-scheduler pipeline.
type portfolioOptions struct {
	enabled    bool
	specs      []string
	deadlineMS int
}

// choosePortfolio parses "-solver portfolio" / "-solver portfolio:spec,...",
// validating the specs up front so bad spellings fail before any solving.
func choosePortfolio(solver string, deadlineMS int, improve bool) (portfolioOptions, error) {
	out := portfolioOptions{deadlineMS: deadlineMS}
	if solver == "" {
		if deadlineMS != 0 {
			return out, fmt.Errorf("-deadline-ms requires -solver portfolio")
		}
		return out, nil
	}
	if deadlineMS < 0 {
		return out, fmt.Errorf("-deadline-ms %d must be >= 0", deadlineMS)
	}
	if improve {
		return out, fmt.Errorf("-improve is built into the portfolio solvers; drop one of -improve/-solver")
	}
	switch {
	case solver == "portfolio":
		out.specs = nfvchain.DefaultPortfolio()
	case strings.HasPrefix(solver, "portfolio:"):
		out.specs = strings.Split(strings.TrimPrefix(solver, "portfolio:"), ",")
	default:
		return out, fmt.Errorf("unknown solver %q (want portfolio or portfolio:spec,spec,...)", solver)
	}
	if _, err := nfvchain.ParsePortfolioSpecs(out.specs); err != nil {
		return out, err
	}
	out.enabled = true
	return out, nil
}

// raceAndReport runs the anytime portfolio race and prints the incumbent
// trajectory plus each racer's final standing, returning the finalized
// winner for the usual evaluation/simulation path.
func raceAndReport(p *model.Problem, seed uint64, pf portfolioOptions, rep io.Writer) (*nfvchain.Solution, error) {
	ctx := context.Background()
	if pf.deadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(pf.deadlineMS)*time.Millisecond)
		defer cancel()
	}
	fmt.Fprintf(rep, "racing portfolio [%s], deadline %s\n",
		strings.Join(pf.specs, " "), deadlineLabel(pf.deadlineMS))
	sol, res, err := nfvchain.SolveRace(ctx, p, nfvchain.RaceOptions{
		Portfolio: pf.specs,
		Seed:      seed,
		LinkDelay: 0.001,
		OnIncumbent: func(inc nfvchain.PortfolioIncumbent) {
			fmt.Fprintf(rep, "  incumbent %-10s objective %.6f  iter %-7d %8.1fms\n",
				inc.Solver, inc.Objective, inc.Iteration, float64(inc.Elapsed.Microseconds())/1e3)
		},
	})
	if err != nil {
		return nil, err
	}
	for _, oc := range res.Outcomes {
		if oc.Err != "" {
			fmt.Fprintf(rep, "  solver %-10s failed: %s\n", oc.Solver, oc.Err)
			continue
		}
		fmt.Fprintf(rep, "  solver %-10s final objective %.6f after %d iterations\n",
			oc.Solver, oc.Objective, oc.Iterations)
	}
	status := "all solvers finished"
	if res.DeadlineExpired {
		status = "deadline expired, best-so-far returned"
	}
	fmt.Fprintf(rep, "race: winner %s (objective %.6f), %d incumbents published, %s\n",
		res.Best.Solver, res.Best.Objective, res.Published, status)
	return sol, nil
}

func deadlineLabel(ms int) string {
	if ms <= 0 {
		return "none (iteration budgets)"
	}
	return fmt.Sprintf("%dms", ms)
}

// algorithms bundles the user-selected pipeline strategies.
type algorithms struct {
	placer    nfvchain.PlacementAlgorithm
	scheduler nfvchain.SchedulingAlgorithm
}

func chooseAlgorithms(placer, scheduler string, seed uint64) (algorithms, error) {
	var out algorithms
	switch placer {
	case "bfdsu":
		out.placer = nfvchain.NewBFDSU(seed)
	case "ffd":
		out.placer = nfvchain.NewFFD()
	case "bfd":
		out.placer = nfvchain.NewBFD()
	case "wfd":
		out.placer = nfvchain.NewWFD()
	case "nah":
		out.placer = nfvchain.NewNAH()
	case "exact":
		out.placer = nfvchain.NewExactPlacer()
	default:
		return out, fmt.Errorf("unknown placer %q", placer)
	}
	switch scheduler {
	case "rckk":
		out.scheduler = nfvchain.NewRCKK()
	case "cga":
		out.scheduler = nfvchain.NewCGA()
	case "ckk":
		out.scheduler = nfvchain.NewCKK()
	case "roundrobin":
		out.scheduler = nfvchain.NewRoundRobin()
	case "exact":
		out.scheduler = nfvchain.NewExactScheduler()
	default:
		return out, fmt.Errorf("unknown scheduler %q", scheduler)
	}
	return out, nil
}

func solveAndReport(p *model.Problem, seed uint64, simulate bool, solOut string, algs algorithms, improve bool, pf portfolioOptions, faults faultOptions, ctrl controlOptions, agenda nfvchain.AgendaKind, wl workloadOptions, out output) error {
	rep := out.report()
	var sol *nfvchain.Solution
	var err error
	placerName, schedulerName := algs.placer.Name(), algs.scheduler.Name()
	if pf.enabled {
		placerName, schedulerName = "portfolio", "portfolio"
		sol, err = raceAndReport(p, seed, pf, rep)
	} else {
		sol, err = nfvchain.Optimize(p, nfvchain.Options{
			Seed:      seed,
			LinkDelay: 0.001,
			Placer:    algs.placer,
			Scheduler: algs.scheduler,
		})
	}
	if err != nil {
		return err
	}
	if improve {
		pl, err := nfvchain.ImprovePlacement(p, sol.Placement)
		if err != nil {
			return err
		}
		sol.Placement = pl
		// Improve only full schedules; post-admission schedules with
		// rejected requests are already per-instance stable.
		if len(sol.Rejected) == 0 {
			sched, err := nfvchain.ImproveSchedule(p, sol.Schedule)
			if err != nil {
				return err
			}
			sol.Schedule = sched
		}
		fmt.Fprintln(rep, "applied local-search polish (placement + schedule)")
	}
	ev, err := nfvchain.Evaluate(sol)
	if err != nil {
		return err
	}
	fmt.Fprintf(rep, "placement (%s): %d nodes in service, avg utilization %.2f%%, %d iterations\n",
		placerName, ev.NodesInService, ev.AvgUtilization*100, sol.PlacementIterations)
	fmt.Fprintf(rep, "scheduling (%s): mean W per instance %.6fs, rejected %d/%d requests (%.2f%%)\n",
		schedulerName, ev.AvgResponseTime, len(sol.Rejected), len(p.Requests), sol.RejectionRate*100)
	fmt.Fprintf(rep, "analytic mean request latency (Eq. 16): %.6fs\n", ev.MeanRequestLatency())

	if solOut != "" {
		f, err := os.Create(solOut)
		if err != nil {
			return fmt.Errorf("create %s: %w", solOut, err)
		}
		defer func() {
			_ = f.Close()
		}()
		if err := sol.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintln(rep, "wrote", solOut)
	}

	if !simulate {
		return nil
	}
	simCfg := nfvchain.SimulationConfig{Horizon: 60, Warmup: 10, Seed: seed, Agenda: agenda}
	closeWorkload, err := applyWorkload(&simCfg, wl, sol, seed, rep)
	if err != nil {
		return err
	}
	defer closeWorkload()
	var repairCtrl *nfvchain.RepairController
	if faults.mtbf > 0 {
		simCfg.FaultPlan = &nfvchain.FaultPlan{MTBF: faults.mtbf, MTTR: faults.mttr}
		simCfg.FailurePolicy = faults.policy
		simCfg.RetransmitDelay = faults.retransmitDelay
		if faults.repair != nfvchain.RepairNone {
			repairCtrl, err = nfvchain.NewRepairController(nfvchain.RepairConfig{
				Problem:   sol.Problem,
				Placement: sol.Placement,
				Schedule:  sol.Schedule,
				Mode:      faults.repair,
				Seed:      seed,
			})
			if err != nil {
				return err
			}
			simCfg.FaultHook = repairCtrl
		}
	}
	if ctrl.preempt != nil {
		if simCfg.FaultPlan == nil {
			simCfg.FaultPlan = &nfvchain.FaultPlan{}
		}
		simCfg.FaultPlan.Preemption = ctrl.preempt
		simCfg.FailurePolicy = faults.policy
		simCfg.RetransmitDelay = faults.retransmitDelay
	}
	var poolCtrl *nfvchain.Controller
	if ctrl.policy != nfvchain.ControlNone {
		poolCtrl, err = nfvchain.NewController(nfvchain.ControlConfig{
			Problem:   sol.Problem,
			Placement: sol.Placement,
			Schedule:  sol.Schedule,
			Policy:    ctrl.policy,
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		// The controller owns both hook slots: node transitions (FaultHook)
		// and the periodic tick loop (Control).
		simCfg.FaultHook = poolCtrl
		simCfg.Control = poolCtrl
		simCfg.ControlInterval = ctrl.interval
	}
	res, err := nfvchain.Simulate(sol, simCfg)
	if err != nil {
		return err
	}
	if out.json {
		// Machine-readable mode: stdout carries exactly the Results document
		// the nfvd daemon serves (simulate.WriteJSON), nothing else.
		return res.WriteJSON(out.stdout)
	}
	// No packet may complete inside [warmup, horizon] (short horizon, long
	// warmup, or total buffer loss) — report "n/a" instead of panicking. One
	// PercentilesOK call sorts the sample set once for all three quantiles.
	tail := "p50/p95/p99 n/a"
	if qs, ok := stats.PercentilesOK(res.LatencySamples, 50, 95, 99); ok {
		tail = fmt.Sprintf("p50 %.6fs, p95 %.6fs, p99 %.6fs", qs[0], qs[1], qs[2])
	}
	fmt.Fprintf(rep, "simulated (agenda %s): %d packets delivered, %d retransmitted, mean latency %.6fs, %s\n",
		res.Agenda, res.Delivered, res.Retransmissions, res.Latency.Mean(), tail)
	if faults.mtbf > 0 || ctrl.preempt != nil {
		var downtime float64
		for _, dt := range res.Downtime {
			downtime += dt
		}
		fmt.Fprintf(rep, "faults: availability %.4f, %d failure drops, %d failure retransmits, %.1f node-seconds of downtime across %d nodes\n",
			res.Availability, res.FailureDrops, res.FailRetransmits, downtime, len(res.Downtime))
		if repairCtrl != nil {
			st := repairCtrl.Stats()
			fmt.Fprintf(rep, "repair (%s): %d failures handled, %d reschedules, %d replacements booted (%d infeasible, %.1fs setup paid)\n",
				faults.repair, st.NodeFailures, st.Reschedules, st.Replacements, st.ReplacementsFailed, st.SetupSecs)
		}
	}
	if poolCtrl != nil {
		st := poolCtrl.StatsAt(simCfg.Horizon)
		fmt.Fprintf(rep, "control (%s): %d ticks, %d scale-ups, %d scale-downs, %d migrations, %d evacuations, %d admissions shed, %.1f node-seconds in service\n",
			ctrl.policy, st.Ticks, st.ScaleUps, st.ScaleDowns, st.Migrations, st.Evacuations, res.Shed, st.NodeSeconds)
	}
	return nil
}
