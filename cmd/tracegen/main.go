// Command tracegen synthesizes nfvchain workloads: a problem instance
// (nodes, VNFs, requests with chains) as JSON and, optionally, a
// packet-level arrival trace as CSV for trace-driven simulation.
//
// Usage:
//
//	tracegen -requests 200 -vnfs 15 -nodes 10 -out problem.json
//	tracegen -out problem.json -trace trace.csv -horizon 30 -dist lognormal
package main

import (
	"flag"
	"fmt"
	"os"

	"nfvchain/internal/model"
	"nfvchain/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// analyzeTrace prints per-request arrival statistics for a recorded trace.
func analyzeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer func() {
		_ = f.Close()
	}()
	tr, err := workload.ReadTraceCSV(f)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %10s %10s %8s %8s %s\n",
		"request", "count", "rate(pps)", "mean gap", "CV", "KS", "poisson?")
	for _, st := range workload.AnalyzeTrace(tr) {
		fmt.Printf("%-12s %8d %10.3f %10.5f %8.3f %8.4f %v\n",
			st.Request, st.Count, st.Rate, st.MeanGap, st.CVGap, st.KSStatistic, st.PoissonLike)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "random seed")
		vnfs     = fs.Int("vnfs", 15, "number of VNFs (max 30)")
		requests = fs.Int("requests", 200, "number of requests")
		nodes    = fs.Int("nodes", 10, "number of computing nodes")
		chainMax = fs.Int("chain-max", model.MaxChainLength, "maximum chain length")
		rateMin  = fs.Float64("rate-min", 1, "minimum request rate (pps)")
		rateMax  = fs.Float64("rate-max", 100, "maximum request rate (pps)")
		prob     = fs.Float64("p", 0.98, "delivery probability P")
		out      = fs.String("out", "", "problem JSON output path (default stdout)")
		tracePth = fs.String("trace", "", "also write an arrival trace CSV to this path")
		horizon  = fs.Float64("horizon", 10, "trace horizon in seconds")
		dist     = fs.String("dist", "exp", `inter-arrival distribution: "exp" or "lognormal"`)
		analyze  = fs.String("analyze", "", "analyze an existing trace CSV (rates, burstiness, Poisson test) and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *analyze != "" {
		return analyzeTrace(*analyze)
	}

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumVNFs = *vnfs
	cfg.NumRequests = *requests
	cfg.NumNodes = *nodes
	cfg.MaxChainLength = *chainMax
	cfg.RateMin, cfg.RateMax = *rateMin, *rateMax
	cfg.DeliveryProb = *prob
	p, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer func() {
			_ = f.Close()
		}()
		w = f
	}
	if err := p.WriteJSON(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Println("wrote", *out)
	}

	if *tracePth == "" {
		return nil
	}
	var ia workload.InterArrival
	switch *dist {
	case "exp":
		ia = workload.InterArrivalExponential
	case "lognormal":
		ia = workload.InterArrivalLogNormal
	default:
		return fmt.Errorf("unknown distribution %q", *dist)
	}
	tr, err := workload.GenerateTrace(p, *horizon, ia, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*tracePth)
	if err != nil {
		return fmt.Errorf("create %s: %w", *tracePth, err)
	}
	defer func() {
		_ = f.Close()
	}()
	if err := tr.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d arrivals over %.3gs)\n", *tracePth, tr.Len(), *horizon)
	return nil
}
