// Command tracegen synthesizes nfvchain workloads: a problem instance
// (nodes, VNFs, requests with chains) as JSON and, optionally, a
// packet-level arrival trace as CSV for trace-driven simulation. Traces are
// written incrementally through the streaming generator tier, so arbitrarily
// long horizons run in O(#requests) memory.
//
// Usage:
//
//	tracegen -requests 200 -vnfs 15 -nodes 10 -out problem.json
//	tracegen -out problem.json -trace trace.csv -horizon 30 -dist lognormal
//	tracegen -out problem.json -trace trace.csv -workload classes -horizon 120
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"nfvchain/internal/model"
	"nfvchain/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// analyzeTrace prints per-request arrival statistics for a recorded trace.
// The file is streamed through the one-pass analyzer, so traces of any
// length are handled in O(#requests) memory.
func analyzeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer func() {
		_ = f.Close()
	}()
	sts, err := workload.AnalyzeTraceCSV(f)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %10s %10s %8s %8s %s\n",
		"request", "count", "rate(pps)", "mean gap", "CV", "KS", "poisson?")
	for _, st := range sts {
		fmt.Printf("%-12s %8d %10.3f %10.5f %8.3f %8.4f %v\n",
			st.Request, st.Count, st.Rate, st.MeanGap, st.CVGap, st.KSStatistic, st.PoissonLike)
	}
	return nil
}

// writeTraceStream pulls the merged superposition one arrival at a time and
// appends CSV rows as they come, bounding the pull by the horizon. Output is
// byte-identical to materializing the same sources into a Trace and calling
// WriteCSV, without ever holding more than one arrival per source.
func writeTraceStream(w io.Writer, ms *workload.MergedStream, horizon float64) (int, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "request"}); err != nil {
		return 0, fmt.Errorf("write trace header: %w", err)
	}
	n := 0
	for {
		t, id, ok := ms.NextArrival()
		if !ok || t >= horizon {
			break
		}
		if err := cw.Write([]string{strconv.FormatFloat(t, 'g', -1, 64), string(id)}); err != nil {
			return n, fmt.Errorf("write trace row: %w", err)
		}
		n++
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return n, fmt.Errorf("flush trace: %w", err)
	}
	return n, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "random seed")
		vnfs     = fs.Int("vnfs", 15, "number of VNFs (max 30)")
		requests = fs.Int("requests", 200, "number of requests")
		nodes    = fs.Int("nodes", 10, "number of computing nodes")
		chainMax = fs.Int("chain-max", model.MaxChainLength, "maximum chain length")
		rateMin  = fs.Float64("rate-min", 1, "minimum request rate (pps)")
		rateMax  = fs.Float64("rate-max", 100, "maximum request rate (pps)")
		prob     = fs.Float64("p", 0.98, "delivery probability P")
		out      = fs.String("out", "", "problem JSON output path (default stdout)")
		tracePth = fs.String("trace", "", "also write an arrival trace CSV to this path (streamed row by row)")
		horizon  = fs.Float64("horizon", 10, "trace horizon in seconds")
		dist     = fs.String("dist", "exp", `with -workload flat: inter-arrival distribution: "exp" or "lognormal"`)
		wlStr    = fs.String("workload", "flat", "trace workload: flat (per-request renewal processes) or classes (heterogeneous client classes: steady/diurnal/bursty)")
		diAmp    = fs.Float64("diurnal-amplitude", 0.8, "with -workload classes: diurnal class rate swing in [0,1)")
		diPeriod = fs.Float64("diurnal-period", 20, "with -workload classes: diurnal class period in seconds")
		burstOn  = fs.Float64("burst-on", 1, "with -workload classes: bursty class mean on-sojourn in seconds")
		burstOff = fs.Float64("burst-off", 4, "with -workload classes: bursty class mean off-sojourn in seconds")
		analyze  = fs.String("analyze", "", "analyze an existing trace CSV (rates, burstiness, Poisson test; streaming, constant memory) and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *analyze != "" {
		return analyzeTrace(*analyze)
	}

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumVNFs = *vnfs
	cfg.NumRequests = *requests
	cfg.NumNodes = *nodes
	cfg.MaxChainLength = *chainMax
	cfg.RateMin, cfg.RateMax = *rateMin, *rateMax
	cfg.DeliveryProb = *prob
	p, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer func() {
			_ = f.Close()
		}()
		w = f
	}
	if err := p.WriteJSON(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Println("wrote", *out)
	}

	if *tracePth == "" {
		return nil
	}
	if *horizon <= 0 {
		return fmt.Errorf("horizon %v must be positive", *horizon)
	}
	var srcs map[model.RequestID]workload.Source
	switch *wlStr {
	case "flat":
		var ia workload.InterArrival
		switch *dist {
		case "exp":
			ia = workload.InterArrivalExponential
		case "lognormal":
			ia = workload.InterArrivalLogNormal
		default:
			return fmt.Errorf("unknown distribution %q", *dist)
		}
		srcs, err = workload.TraceSources(p, ia, *seed)
		if err != nil {
			return err
		}
	case "classes":
		if *dist != "exp" {
			return fmt.Errorf("-dist applies to -workload flat only (classes fix each class's process)")
		}
		classes := workload.DefaultClasses()
		for i := range classes {
			switch classes[i].Process {
			case workload.ProcessDiurnal:
				classes[i].Amplitude = *diAmp
				classes[i].Period = *diPeriod
			case workload.ProcessOnOff:
				classes[i].MeanOn = *burstOn
				classes[i].MeanOff = *burstOff
			}
		}
		cw, err := workload.BuildSources(p, classes, *seed)
		if err != nil {
			return err
		}
		srcs = cw.Sources
	default:
		return fmt.Errorf("unknown workload %q (want flat|classes)", *wlStr)
	}
	f, err := os.Create(*tracePth)
	if err != nil {
		return fmt.Errorf("create %s: %w", *tracePth, err)
	}
	defer func() {
		_ = f.Close()
	}()
	n, err := writeTraceStream(f, workload.NewMergedStream(srcs), *horizon)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d arrivals over %.3gs)\n", *tracePth, n, *horizon)
	return nil
}
