package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/workload"
)

func TestRunGeneratesProblemAndTrace(t *testing.T) {
	dir := t.TempDir()
	problem := filepath.Join(dir, "p.json")
	trace := filepath.Join(dir, "t.csv")
	err := run([]string{
		"-requests", "20", "-vnfs", "8", "-nodes", "5",
		"-out", problem, "-trace", trace, "-horizon", "1.5",
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(problem)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	p, err := model.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Requests) != 20 || len(p.VNFs) != 8 || len(p.Nodes) != 5 {
		t.Errorf("sizes: %d/%d/%d", len(p.Requests), len(p.VNFs), len(p.Nodes))
	}

	tf, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tf.Close() }()
	tr, err := workload.ReadTraceCSV(tf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Error("empty trace")
	}
}

func TestRunLogNormalMode(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-requests", "5", "-out", filepath.Join(dir, "p.json"),
		"-trace", filepath.Join(dir, "t.csv"), "-horizon", "0.5", "-dist", "lognormal",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"bad flag":          {"-bogus"},
		"bad dist":          {"-trace", filepath.Join(t.TempDir(), "t.csv"), "-dist", "weibull"},
		"bad config":        {"-requests", "-5"},
		"vnfs over catalog": {"-vnfs", "99"},
		"unwritable out":    {"-out", filepath.Join(t.TempDir(), "no", "such", "dir", "p.json")},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(args); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestRunStdout(t *testing.T) {
	// No -out writes JSON to stdout; just confirm it succeeds.
	if err := run([]string{"-requests", "3", "-vnfs", "6"}); err != nil {
		t.Fatal(err)
	}
	_ = strings.TrimSpace // keep strings import honest if assertions grow
}

func TestRunAnalyze(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.csv")
	if err := run([]string{"-requests", "3", "-vnfs", "6", "-rate-min", "40", "-rate-max", "60",
		"-out", filepath.Join(dir, "p.json"), "-trace", trace, "-horizon", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-analyze", trace}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-analyze", filepath.Join(dir, "missing.csv")}); err == nil {
		t.Error("missing trace accepted")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-analyze", bad}); err == nil {
		t.Error("malformed trace accepted")
	}
}
