// Command nfvbench runs the repository's performance-trajectory benchmarks
// and writes the results as machine-readable JSON, so successive PRs can
// compare ns/op and allocs/op on the same scenarios.
//
// Usage:
//
//	nfvbench                      # run all scenarios, write BENCH.json
//	nfvbench -out results/BENCH.json
//	nfvbench -run Simulator       # only scenarios whose name contains the substring
//
// The scenario set mirrors the hot paths of the pipeline: the discrete-event
// simulator at small and large horizons (with and without drop-retransmit
// loss feedback) and the KK-family partitioners at growing request counts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"context"

	"nfvchain/internal/cluster"
	"nfvchain/internal/control"
	"nfvchain/internal/core"
	"nfvchain/internal/dynamic"
	"nfvchain/internal/model"
	"nfvchain/internal/profiling"
	"nfvchain/internal/repair"
	"nfvchain/internal/rng"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
	"nfvchain/internal/workload"
)

// benchResult is one scenario's measurement in BENCH.json.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// GOMAXPROCS pins the parallelism the scenario ran under. Parallel
	// scenarios (the windowed cluster driver) scale with it, so -compare
	// refuses to diff entries whose GOMAXPROCS differ. 0 in old baselines
	// means unrecorded and compares permissively.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
}

// benchEnv pins the machine state a measurement was taken under, so a
// trajectory diff can tell an optimization from a toolchain or host change.
type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitCommit  string `json:"git_commit"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// benchFile is the top-level BENCH.json document. The legacy top-level
// go_version/goos/goarch fields stay for older tooling; Environment is the
// richer header new consumers should read.
type benchFile struct {
	GeneratedBy string        `json:"generated_by"`
	Date        string        `json:"date"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	Environment benchEnv      `json:"environment"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

// gitCommit resolves the short commit hash of the working tree: git first,
// then the binary's embedded VCS stamp, then "unknown" (e.g. a bare tarball).
func gitCommit() string {
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		if s := strings.TrimSpace(string(out)); s != "" {
			return s
		}
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 7 {
				return s.Value[:7]
			}
		}
	}
	return "unknown"
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nfvbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nfvbench", flag.ContinueOnError)
	var (
		out       = fs.String("out", "BENCH.json", "output path for the JSON report")
		runFilter = fs.String("run", "", "only run scenarios whose name contains this substring")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit")
		mutexProf = fs.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blockProf = fs.String("blockprofile", "", "write a blocking profile to this file on exit")
		compare   = fs.String("compare", "", "compare against a baseline BENCH.json instead of writing a report; exits non-zero on regression")
		nsTol     = fs.Float64("ns-tolerance", 0.15, "fractional ns/op regression tolerated by -compare (allocs/op is always strict)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(profiling.Profiles{
		CPU: *cpuProf, Mem: *memProf, Mutex: *mutexProf, Block: *blockProf,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "nfvbench:", perr)
		}
	}()

	doc := benchFile{
		GeneratedBy: "nfvbench",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Environment: benchEnv{
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GitCommit:  gitCommit(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
		},
	}
	for _, sc := range scenarios() {
		if *runFilter != "" && !strings.Contains(sc.name, *runFilter) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %-40s", sc.name)
		r := benchmarkFor(sc.fn)
		res := benchResult{
			Name:        sc.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
		}
		fmt.Fprintf(os.Stderr, " %12.0f ns/op %8d allocs/op\n", res.NsPerOp, res.AllocsPerOp)
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no scenario matches -run %q", *runFilter)
	}
	if *compare != "" {
		return compareBaseline(*compare, doc.Benchmarks, *nsTol)
	}

	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

// compareBaseline diffs the fresh measurements against a recorded baseline
// file, printing one line per scenario, and fails on any allocs/op increase
// or an ns/op regression beyond tol (a fraction, e.g. 0.15 = +15%).
// Scenarios present on only one side are reported but never fail the gate,
// so adding a scenario does not require regenerating the baseline first.
func compareBaseline(path string, got []benchResult, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	baseline := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	var regressions []string
	compared := 0
	for _, g := range got {
		b, ok := baseline[g.Name]
		if !ok {
			fmt.Printf("%-34s %14.0f ns/op %8d allocs/op   (no baseline entry)\n",
				g.Name, g.NsPerOp, g.AllocsPerOp)
			continue
		}
		// ns/op of parallel scenarios scales with the core count they ran
		// under; diffing across machines with different GOMAXPROCS would
		// flag phantom regressions. 0 means an old baseline that never
		// recorded it — compare permissively.
		if b.GOMAXPROCS != 0 && g.GOMAXPROCS != 0 && b.GOMAXPROCS != g.GOMAXPROCS {
			fmt.Printf("%-34s skipped: GOMAXPROCS %d (baseline) vs %d (now)\n",
				g.Name, b.GOMAXPROCS, g.GOMAXPROCS)
			continue
		}
		compared++
		dNs := (g.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		if g.AllocsPerOp > b.AllocsPerOp {
			verdict = "FAIL allocs/op"
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %d -> %d", g.Name, b.AllocsPerOp, g.AllocsPerOp))
		}
		if dNs > tol {
			verdict = "FAIL ns/op"
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/op %.0f -> %.0f (%+.1f%%, tolerance %+.0f%%)",
				g.Name, b.NsPerOp, g.NsPerOp, 100*dNs, 100*tol))
		}
		fmt.Printf("%-34s ns/op %12.0f -> %12.0f (%+6.1f%%)   allocs/op %6d -> %6d   %s\n",
			g.Name, b.NsPerOp, g.NsPerOp, 100*dNs, b.AllocsPerOp, g.AllocsPerOp, verdict)
	}
	if compared == 0 {
		return fmt.Errorf("no scenario in common with baseline %s", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("performance regressions against %s:\n  %s",
			path, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("compared %d scenarios against %s: no regressions (ns/op tolerance %+.0f%%, allocs/op strict)\n",
		compared, path, 100*tol)
	return nil
}

// benchmarkFor runs fn under the testing benchmark driver (the standard ~1s
// budget) with allocation tracking.
func benchmarkFor(fn func(b *testing.B)) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
}

type scenario struct {
	name string
	fn   func(b *testing.B)
}

// scenarios returns the fixed trajectory suite. Names are stable across PRs
// — comparisons depend on them.
func scenarios() []scenario {
	out := []scenario{
		{"Simulator/second", simulatorSecond},
		{"Simulator/large-horizon", simulatorLargeHorizon},
		{"Simulator/large-horizon-reuse", simulatorLargeHorizonReuse},
		{"Simulator/deep-horizon", simulatorDeepHorizon},
		{"Simulator/agenda-ab/heap", func(b *testing.B) { simulatorAgendaAB(b, simulate.AgendaHeap) }},
		{"Simulator/agenda-ab/ladder", func(b *testing.B) { simulatorAgendaAB(b, simulate.AgendaLadder) }},
		{"Simulator/stream-replay", simulatorStreamReplay},
		{"Simulator/bursty-classes", simulatorBurstyClasses},
		{"Simulator/drop-retransmit", simulatorDropRetransmit},
		{"Simulator/failure-churn", simulatorFailureChurn},
		{"Simulator/preemption-churn", simulatorPreemptionChurn},
		{"Simulator/cluster", simulatorCluster},
		{"Simulator/cluster-sequential", func(b *testing.B) { simulatorClusterWindowAB(b, 0) }},
		{"Simulator/cluster-parallel", func(b *testing.B) { simulatorClusterWindowAB(b, runtime.GOMAXPROCS(0)) }},
	}
	for _, n := range []int{250, 1000, 2000} {
		n := n
		out = append(out, scenario{
			fmt.Sprintf("RCKK/n=%d", n),
			func(b *testing.B) { partitionBench(b, scheduling.RCKK{}, n, 5) },
		})
	}
	out = append(out,
		scenario{"KKForward/n=250", func(b *testing.B) { partitionBench(b, scheduling.KKForward{}, 250, 5) }},
		scenario{"CKK/n=40", func(b *testing.B) { partitionBench(b, scheduling.CKK{MaxNodes: 20_000}, 40, 4) }},
		scenario{"Portfolio/anytime-race", portfolioAnytimeRace},
	)
	return out
}

// portfolioAnytimeRace measures the full anytime-racing path (compile, the
// baseline + metaheuristic solvers at fixed iteration budgets, winner
// finalization with admission control) on a mid-size generated workload. One
// worker and a fixed seed make every iteration bit-identical, so allocs/op
// holds exactly under the strict comparison gate.
func portfolioAnytimeRace(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.Seed = 7
	cfg.NumVNFs = 8
	cfg.NumRequests = 60
	cfg.NumNodes = 6
	prob, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if total := prob.TotalDemand(); total > 0 {
		scale := 0.6 * prob.TotalCapacity() / total
		for i := range prob.VNFs {
			prob.VNFs[i].Demand *= scale
		}
	}
	lineup := []string{"greedy", "ffd", "sa:iters=1500;polish=500", "lns:iters=30", "pso:iters=10;particles=6"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SolveRace(context.Background(), prob, core.RaceOptions{
			Portfolio: lineup,
			Workers:   1,
			Seed:      7,
			LinkDelay: 0.001,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- scenario bodies (mirroring bench_test.go fixtures) ---------------------

func threeStageFixture() (*model.Problem, *model.Schedule) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 1, Demand: 1, ServiceRate: 500},
			{ID: "f2", Instances: 1, Demand: 1, ServiceRate: 400},
			{ID: "f3", Instances: 1, Demand: 1, ServiceRate: 600},
		},
		Requests: []model.Request{
			{ID: "r", Chain: []model.VNFID{"f1", "f2", "f3"}, Rate: 200, DeliveryProb: 0.98},
		},
	}
	sched := model.NewSchedule()
	for _, f := range prob.VNFs {
		sched.Assign("r", f.ID, 0)
	}
	return prob, sched
}

// fleetFixture mirrors bench_test.go's largeHorizonFixture: 1500 pps over a
// 4-stage chain with every instance stable (ρ ≈ 0.75 at the hottest one).
func fleetFixture() (*model.Problem, *model.Schedule) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 10000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 2, Demand: 1, ServiceRate: 1200},
			{ID: "f2", Instances: 2, Demand: 1, ServiceRate: 1200},
			{ID: "f3", Instances: 1, Demand: 1, ServiceRate: 2000},
			{ID: "f4", Instances: 1, Demand: 1, ServiceRate: 2000},
		},
	}
	for i := 0; i < 5; i++ {
		prob.Requests = append(prob.Requests, model.Request{
			ID:    model.RequestID(fmt.Sprintf("r%d", i)),
			Chain: []model.VNFID{"f1", "f2", "f3", "f4"}, Rate: 300, DeliveryProb: 0.98,
		})
	}
	sched := model.NewSchedule()
	for i, r := range prob.Requests {
		for _, f := range prob.VNFs {
			sched.Assign(r.ID, f.ID, i%f.Instances)
		}
	}
	return prob, sched
}

func simulatorSecond(b *testing.B) {
	prob, sched := threeStageFixture()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Run(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 1, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func simulatorLargeHorizon(b *testing.B) {
	prob, sched := fleetFixture()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Run(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 30, Warmup: 2, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// warmed runs one unmeasured iteration before the timed loop. Reuse-style
// scenarios grow the shared Simulator's arenas on their first run; folding
// that one-time growth into allocs/op makes the number depend on whatever
// iteration count the benchmark driver picked (flaky against the strict
// allocs gate). Warm first, then measure the deterministic steady state.
func warmed(b *testing.B, iter func(seed uint64)) {
	iter(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter(uint64(i))
	}
}

// simulatorLargeHorizonReuse is large-horizon through the Reset path: one
// Simulator serves every iteration, so the gap to Simulator/large-horizon is
// exactly the per-trial allocation cost sweeps save by reusing run state.
func simulatorLargeHorizonReuse(b *testing.B) {
	prob, sched := fleetFixture()
	sim := simulate.NewSimulator()
	warmed(b, func(seed uint64) {
		if err := sim.Reset(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 30, Warmup: 2, Seed: seed,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// simulatorDeepHorizon stretches the fleet workload to a 300 s horizon —
// about 4.5M events, ten times the large-horizon run — which pushes
// AgendaAuto past its expected-event threshold onto the ladder queue. Reuses
// one Simulator so allocs/op reflects steady-state sweeps.
func simulatorDeepHorizon(b *testing.B) {
	prob, sched := fleetFixture()
	sim := simulate.NewSimulator()
	warmed(b, func(seed uint64) {
		if err := sim.Reset(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 300, Warmup: 2, Seed: seed,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// simulatorAgendaAB pins the deep-horizon workload to one agenda backend, so
// the heap and ladder scenarios differ only in the pending-event queue —
// the direct A/B behind AgendaAuto's threshold.
func simulatorAgendaAB(b *testing.B, kind simulate.AgendaKind) {
	prob, sched := fleetFixture()
	sim := simulate.NewSimulator()
	warmed(b, func(seed uint64) {
		if err := sim.Reset(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 300, Warmup: 2, Seed: seed,
			Agenda: kind,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// simulatorStreamReplay is the large-horizon fleet workload arriving through
// the streaming trace cursor: per-request Poisson sources superposed by a
// MergedStream feed Config.TraceStream one row at a time, with the
// ExpectedArrivals hint standing in for the exact trace length a CSV replay
// would have learned from its analysis pass. Measures the pull-based arrival
// path (one staged event per cursor) against the push-everything baseline of
// Simulator/large-horizon-reuse.
func simulatorStreamReplay(b *testing.B) {
	prob, sched := fleetFixture()
	sim := simulate.NewSimulator()
	warmed(b, func(seed uint64) {
		srcs, err := workload.TraceSources(prob, workload.InterArrivalExponential, seed)
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Reset(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 30, Warmup: 2, Seed: seed,
			TraceStream:      workload.NewMergedStream(srcs),
			ExpectedArrivals: 45_000, // ~1500 pps × 30 s
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// simulatorBurstyClasses drives the fleet with the heavy-traffic client-class
// mix (steady/diurnal/bursty) through Config.Sources — the generator tier's
// hot path: NHPP thinning and MMPP epoch-walking inside the event loop.
func simulatorBurstyClasses(b *testing.B) {
	prob, sched := fleetFixture()
	sim := simulate.NewSimulator()
	warmed(b, func(seed uint64) {
		cw, err := workload.BuildSources(prob, workload.DefaultClasses(), seed)
		if err != nil {
			b.Fatal(err)
		}
		srcs := make(map[model.RequestID]simulate.ArrivalSource, len(cw.Sources))
		for id, s := range cw.Sources {
			srcs[id] = s
		}
		if err := sim.Reset(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 30, Warmup: 2, Seed: seed,
			Sources: srcs,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// clusterFixture is a compact two-stage datacenter: one request generating
// local traffic plus one cluster-routed global flow sharing the same chain.
func clusterFixture() (*model.Problem, *model.Schedule) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 1, Demand: 1, ServiceRate: 500},
			{ID: "f2", Instances: 1, Demand: 1, ServiceRate: 600},
		},
		Requests: []model.Request{
			{ID: "local", Chain: []model.VNFID{"f1", "f2"}, Rate: 150, DeliveryProb: 0.98},
			{ID: "global", Chain: []model.VNFID{"f1", "f2"}, Rate: 150, DeliveryProb: 0.98},
		},
	}
	sched := model.NewSchedule()
	for _, r := range prob.Requests {
		for _, f := range prob.VNFs {
			sched.Assign(r.ID, f.ID, 0)
		}
	}
	return prob, sched
}

// simulatorCluster composes 8 datacenter simulators under one global clock:
// each runs its own local Poisson traffic while a shared global flow is
// least-loaded-routed across them with a 5 ms WAN entry hop. Exercises the
// stepping primitives (peek/process), Inject, and the routing hot path.
func simulatorCluster(b *testing.B) {
	prob, sched := clusterFixture()
	const dcs = 8
	for i := 0; i < b.N; i++ {
		cfg := cluster.Config{
			WANLatency: 0.005,
			Router:     cluster.LeastLoaded{},
			Global:     []cluster.GlobalRequest{{ID: "global", Rate: 300, Home: 0}},
			Seed:       uint64(i),
		}
		for d := 0; d < dcs; d++ {
			cfg.Datacenters = append(cfg.Datacenters, cluster.Datacenter{
				Name: fmt.Sprintf("dc%d", d),
				Sim: simulate.Config{
					Problem: prob, Schedule: sched, Horizon: 10, Warmup: 1,
					Seed: uint64(i)*dcs + uint64(d),
				},
			})
		}
		c, err := cluster.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// simulatorClusterWindowAB is the sequential-vs-windowed A/B behind the
// Config.Workers knob: the same 8-datacenter composition as
// Simulator/cluster but with sparse global traffic (4 arrivals/s against
// ~300 pps of local load per datacenter), so each conservative window
// carries thousands of drainable events. workers = 0 measures the
// event-interleaved sequential driver, workers = GOMAXPROCS the windowed
// driver with the pool sized to the machine. Results are bit-identical; the
// scenarios differ only in driver overhead.
func simulatorClusterWindowAB(b *testing.B, workers int) {
	prob, sched := clusterFixture()
	const dcs = 8
	for i := 0; i < b.N; i++ {
		cfg := cluster.Config{
			WANLatency: 0.005,
			Router:     cluster.LeastLoaded{},
			Global:     []cluster.GlobalRequest{{ID: "global", Rate: 4, Home: 0}},
			Seed:       uint64(i),
			Workers:    workers,
		}
		for d := 0; d < dcs; d++ {
			cfg.Datacenters = append(cfg.Datacenters, cluster.Datacenter{
				Name: fmt.Sprintf("dc%d", d),
				Sim: simulate.Config{
					Problem: prob, Schedule: sched, Horizon: 25, Warmup: 1,
					Seed: uint64(i)*dcs + uint64(d),
				},
			})
		}
		c, err := cluster.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// simulatorDropRetransmit: a stable M/M/1/4 queue (ρ = 0.8) whose blocking
// losses are re-injected from the source (NACK loss feedback).
func simulatorDropRetransmit(b *testing.B) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f", Instances: 1, Demand: 1, ServiceRate: 100},
		},
		Requests: []model.Request{
			{ID: "r", Chain: []model.VNFID{"f"}, Rate: 80, DeliveryProb: 0.98},
		},
	}
	sched := model.NewSchedule()
	sched.Assign("r", "f", 0)
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Run(simulate.Config{
			Problem: prob, Schedule: sched, Horizon: 30, Warmup: 2, Seed: uint64(i),
			BufferSize: 3, DropPolicy: simulate.DropRetransmit, RetransmitDelay: 0.005,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// churnFixture spreads the fleet's chain over three nodes so a node failure
// takes out a whole VNF (the co-located worst case the repair controller is
// built for), with headroom left for replacement instances.
func churnFixture() (*model.Problem, *model.Schedule, *model.Placement) {
	prob := &model.Problem{
		Nodes: []model.Node{
			{ID: "a", Capacity: 6}, {ID: "b", Capacity: 6}, {ID: "c", Capacity: 6},
		},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 2, Demand: 1, ServiceRate: 1200},
			{ID: "f2", Instances: 2, Demand: 1, ServiceRate: 1200},
			{ID: "f3", Instances: 1, Demand: 1, ServiceRate: 2000},
			{ID: "f4", Instances: 1, Demand: 1, ServiceRate: 2000},
		},
	}
	for i := 0; i < 5; i++ {
		prob.Requests = append(prob.Requests, model.Request{
			ID:    model.RequestID(fmt.Sprintf("r%d", i)),
			Chain: []model.VNFID{"f1", "f2", "f3", "f4"}, Rate: 300, DeliveryProb: 0.98,
		})
	}
	sched := model.NewSchedule()
	for i, r := range prob.Requests {
		for _, f := range prob.VNFs {
			sched.Assign(r.ID, f.ID, i%f.Instances)
		}
	}
	pl := model.NewPlacement()
	pl.Assign("f1", "a")
	pl.Assign("f2", "b")
	pl.Assign("f3", "c")
	pl.Assign("f4", "c")
	return prob, sched, pl
}

// simulatorFailureChurn: the fleet workload under sustained node churn (MTBF
// = horizon/3, so roughly three outages per run) with failed packets
// retransmitted and a reschedule+replace repair controller booting ClickOS
// replacements mid-run. Measures the full self-healing path: fault events,
// epoch-guarded completions, RCKK rebalancing and BFDSU re-placement.
func simulatorFailureChurn(b *testing.B) {
	prob, sched, pl := churnFixture()
	const horizon = 30.0
	ctrl, err := repair.New(repair.Config{
		Problem:   prob,
		Placement: pl,
		Schedule:  sched,
		Mode:      repair.ModeRescheduleReplace,
		SetupCost: dynamic.SetupCostClickOS,
	})
	if err != nil {
		b.Fatal(err)
	}
	sim := simulate.NewSimulator()
	plan := &simulate.FaultPlan{MTBF: horizon / 3, MTTR: 2}
	warmed(b, func(seed uint64) {
		ctrl.Reset(seed)
		if err := sim.Reset(simulate.Config{
			Problem: prob, Schedule: sched, Placement: pl, LinkDelay: 0.001,
			Horizon: horizon, Warmup: 2, Seed: seed,
			FaultPlan:       plan,
			FailurePolicy:   simulate.FailRetransmit,
			RetransmitDelay: 0.01,
			FaultHook:       ctrl,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// simulatorPreemptionChurn: the churn fixture under correlated preemption —
// two-node groups lost together about four times per run, each announced
// 0.4 s ahead — managed by the autoscale+migrate control plane ticking every
// 0.5 s. Measures the full online-control path: preemption notices and
// ahead-of-loss evacuations, windowed utilization observation, autoscaling
// with ClickOS boot costs, live migration and deterministic admission
// shedding, all on top of the repair controller's fault handling.
func simulatorPreemptionChurn(b *testing.B) {
	prob, sched, pl := churnFixture()
	const horizon = 30.0
	ctrl, err := control.New(control.Config{
		Problem:       prob,
		Placement:     pl,
		Schedule:      sched,
		Policy:        control.PolicyAutoscaleMigrate,
		SetupCost:     dynamic.SetupCostClickOS,
		MigrationCost: dynamic.SetupCostClickOS,
	})
	if err != nil {
		b.Fatal(err)
	}
	sim := simulate.NewSimulator()
	plan := &simulate.FaultPlan{Preemption: &simulate.PreemptionPlan{
		MeanInterval: horizon / 4, GroupSize: 2, Recovery: 2, LeadTime: 0.4,
	}}
	warmed(b, func(seed uint64) {
		ctrl.Reset(seed)
		if err := sim.Reset(simulate.Config{
			Problem: prob, Schedule: sched, Placement: pl, LinkDelay: 0.001,
			Horizon: horizon, Warmup: 2, Seed: seed,
			FaultPlan:       plan,
			FailurePolicy:   simulate.FailRetransmit,
			RetransmitDelay: 0.01,
			FaultHook:       ctrl,
			Control:         ctrl,
			ControlInterval: 0.5,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

func partitionBench(b *testing.B, alg scheduling.Partitioner, n, m int) {
	s := rng.New(7)
	items := make([]scheduling.Item, n)
	for i := range items {
		items[i] = scheduling.Item{
			ID:     model.RequestID(fmt.Sprintf("r%04d", i)),
			Weight: s.Uniform(1, 100),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Partition(items, m); err != nil {
			b.Fatal(err)
		}
	}
}
