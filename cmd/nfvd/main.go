// Command nfvd serves the nfvchain optimizer and simulator as a
// long-running HTTP daemon: a bounded job queue, a worker pool reusing
// warm simulators, a content-addressed result cache, and cooperative job
// cancellation. See the "Serving mode" section of the README for the API.
//
// Usage:
//
//	nfvd                       # serve on 127.0.0.1:8372
//	nfvd -addr 127.0.0.1:0     # serve on a random free port (printed)
//	nfvd -workers 8 -queue 256 # bigger pool, deeper queue
//
// The daemon prints "nfvd: listening on http://HOST:PORT" once ready and
// shuts down gracefully on SIGINT/SIGTERM: intake stops (new submissions
// answer 503), queued and running jobs drain, and only then does the
// process exit. Jobs still running when -drain expires are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nfvchain/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "nfvd:", err)
		os.Exit(1)
	}
}

// run boots the daemon. ready, if non-nil, receives the bound address once
// the listener is up (used by tests); stdout carries the human-readable
// startup line so scripts can scrape the chosen port.
func run(args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("nfvd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8372", "listen address (use :0 for a random port)")
		workers = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = fs.Int("queue", 64, "job queue depth (a full queue answers 429)")
		cache   = fs.Int("cache", 256, "result cache entries (-1 disables caching)")
		drain   = fs.Duration("drain", 30*time.Second, "graceful shutdown budget before running jobs are cancelled")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Register the signal handler before announcing readiness so a SIGINT
	// arriving right after the startup line always drains gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	svc := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "nfvd: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately via the default handler

	fmt.Fprintln(stdout, "nfvd: shutting down (draining jobs)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job queue; an error
	// from either still lets the other finish.
	httpErr := httpSrv.Shutdown(drainCtx)
	svcErr := svc.Shutdown(drainCtx)
	if svcErr != nil {
		fmt.Fprintln(stdout, "nfvd: drain budget exceeded, running jobs cancelled")
	}
	<-serveErr // always http.ErrServerClosed after Shutdown
	if httpErr != nil && !errors.Is(httpErr, context.DeadlineExceeded) {
		return httpErr
	}
	fmt.Fprintln(stdout, "nfvd: bye")
	return nil
}
