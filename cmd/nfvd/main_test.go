package main

import (
	"context"
	"io"
	"strings"
	"syscall"
	"testing"
	"time"

	"nfvchain/internal/model"
	"nfvchain/internal/service"
)

// tinyProblem is a minimal solvable instance for the round-trip probe.
func tinyProblem() *model.Problem {
	return &model.Problem{
		Nodes:    []model.Node{{ID: "n1", Capacity: 4}},
		VNFs:     []model.VNF{{ID: "fw", Instances: 1, Demand: 1, ServiceRate: 50}},
		Requests: []model.Request{{ID: "r1", Chain: []model.VNFID{"fw"}, Rate: 5, DeliveryProb: 0.95}},
	}
}

// TestRunServesAndDrainsOnSignal boots the daemon on a random port, runs a
// health probe and one solve round-trip through the Go client, then delivers
// SIGINT and expects a clean exit.
func TestRunServesAndDrainsOnSignal(t *testing.T) {
	ready := make(chan string, 1)
	var out strings.Builder
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "10s"}, &out, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := service.NewClient("http://" + addr)
	if err := c.Healthy(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.Solve(ctx, service.SolveRequest{Problem: tinyProblem()})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID); err != nil || st.State != service.StateDone {
		t.Fatalf("wait: %v, state %+v", err, st)
	}
	if _, err := c.SolveResult(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
	for _, want := range []string{"listening on http://127.0.0.1:", "shutting down", "bye"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRejectsBadFlags pins flag-parse and listen errors to non-nil
// returns rather than os.Exit deep in the daemon.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-addr", "256.256.256.256:1"}, io.Discard, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
}
